//! The plain logit-averaging KD strawman of the paper's motivation study.

use std::time::Instant;

use crate::common::{
    build_clients, client_accuracies, for_each_active_client, validate_specs, Client,
};
use crate::BaselineConfig;
use fedpkd_core::eval;
use fedpkd_core::fedpkd::logits::aggregation_stats;
use fedpkd_core::fedpkd::CoreError;
use fedpkd_core::runtime::{DriverState, Federation};
use fedpkd_core::snapshot::{self, SnapshotError, StateSink, StateSource};
use fedpkd_core::telemetry::{emit_phase_timing, Phase, RoundObserver, TelemetryEvent};
use fedpkd_core::train::{train_distill, train_supervised, TrainStats};
use fedpkd_data::FederatedScenario;
use fedpkd_netsim::{CommLedger, Direction, Message, RoundContext};
use fedpkd_rng::Rng;
use fedpkd_tensor::models::{ClassifierModel, ModelSpec};
use fedpkd_tensor::ops::softmax;
use fedpkd_tensor::Tensor;

/// Naive KD-based FL (Eq. 3): clients train locally and upload public-set
/// logits; the server distills the *uniform average* of those logits into
/// its model. No prototypes, no weighting, no filtering, no feedback to
/// clients.
///
/// This is the arm labeled "KD-based" in the paper's Figs. 1–3 motivation
/// experiments — the baseline whose weaknesses FedPKD is built to fix.
pub struct NaiveKd {
    scenario: FederatedScenario,
    config: BaselineConfig,
    state: NaiveKdState,
}

/// The owned, snapshotable half of [`NaiveKd`]: everything that changes
/// from round to round. `scenario` + `config` are the static half.
struct NaiveKdState {
    clients: Vec<Client>,
    server_model: ClassifierModel,
    server_rng: Rng,
    driver: DriverState,
}

impl NaiveKd {
    /// Assembles the naive-KD federation (heterogeneous clients allowed,
    /// larger server allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] if the config is invalid or the scenario/spec
    /// wiring is inconsistent.
    pub fn new(
        scenario: FederatedScenario,
        client_specs: Vec<ModelSpec>,
        server_spec: ModelSpec,
        config: BaselineConfig,
        seed: u64,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        validate_specs(&scenario, &client_specs, Some(&server_spec), false)?;
        let clients = build_clients(&client_specs, config.learning_rate, seed);
        let mut server_rng = Rng::stream(seed, 0);
        let server_model = server_spec.build(&mut server_rng);
        Ok(Self {
            scenario,
            config,
            state: NaiveKdState {
                clients,
                server_model,
                server_rng,
                driver: DriverState::new(),
            },
        })
    }

    /// The uniform-average logits of the clients on the public set after the
    /// most recent round — exposed for the Fig. 2 logit-quality analysis.
    pub fn aggregated_public_logits(&mut self) -> Tensor {
        let public = &self.scenario.public;
        let logits: Vec<Tensor> = self
            .state
            .clients
            .iter_mut()
            .map(|c| eval::logits_on(&mut c.model, public))
            .collect();
        let mut mean = Tensor::zeros(logits[0].shape());
        let w = 1.0 / logits.len() as f32;
        for l in &logits {
            mean.axpy(w, l).expect("aligned logits");
        }
        mean
    }
}

impl Federation for NaiveKd {
    fn name(&self) -> &'static str {
        "NaiveKD"
    }

    fn num_clients(&self) -> usize {
        self.state.clients.len()
    }

    fn run_round(
        &mut self,
        round: usize,
        ctx: &RoundContext,
        ledger: &mut CommLedger,
        obs: &mut dyn RoundObserver,
    ) {
        let cohort = ctx.cohort();
        // No survivors: no logits arrive, so the server has nothing to
        // distill from this round.
        if cohort.num_active() == 0 {
            return;
        }
        let config = &self.config;
        let public = &self.scenario.public;
        let num_classes = self.scenario.num_classes as u32;
        let all_ids: Vec<u32> = (0..public.len() as u32).collect();

        let training_started = Instant::now();
        let client_logits: Vec<(usize, (Tensor, TrainStats))> = for_each_active_client(
            &mut self.state.clients,
            &self.scenario.clients,
            cohort,
            |_, client, data| {
                let stats = train_supervised(
                    &mut client.model,
                    &data.train,
                    config.local_epochs,
                    config.batch_size,
                    &mut client.optimizer,
                    &mut client.rng,
                );
                (eval::logits_on(&mut client.model, public), stats)
            },
        );
        for &(client, (_, ref stats)) in &client_logits {
            obs.record(&TelemetryEvent::ClientTrained {
                round,
                client,
                samples: self.scenario.clients[client].train.len(),
                mean_loss: stats.mean_loss,
            });
        }
        emit_phase_timing(obs, round, Phase::ClientTraining, training_started);
        let client_logits: Vec<(usize, Tensor)> = client_logits
            .into_iter()
            .map(|(client, (l, _))| (client, l))
            .collect();
        for (client, logits) in &client_logits {
            ledger.record(
                round,
                *client,
                Direction::Uplink,
                &Message::Logits {
                    sample_ids: all_ids.clone(),
                    num_classes,
                    values: logits.as_slice().to_vec(),
                },
            );
        }

        // Uniform average over the survivors → server distillation (Eq. 3).
        let aggregation_started = Instant::now();
        let mut mean = Tensor::zeros(client_logits[0].1.shape());
        let w = 1.0 / client_logits.len() as f32;
        for (_, l) in &client_logits {
            mean.axpy(w, l).expect("aligned logits");
        }
        if obs.enabled() {
            let logits_only: Vec<Tensor> = client_logits.iter().map(|(_, l)| l.clone()).collect();
            let stats = aggregation_stats(&logits_only, false);
            obs.record(&TelemetryEvent::LogitAggregation {
                round,
                clients: cohort.num_active(),
                variance_weighting: false,
                mean_client_weight: stats.mean_client_weight,
                disagreement: stats.disagreement,
            });
        }
        let teacher = softmax(&mean, config.temperature);
        emit_phase_timing(obs, round, Phase::Aggregation, aggregation_started);

        let server_started = Instant::now();
        let server_stats = train_distill(
            &mut self.state.server_model,
            public.features(),
            &teacher,
            config.gamma,
            config.temperature,
            config.server_epochs,
            config.batch_size,
            &mut fedpkd_tensor::optim::Adam::new(config.learning_rate),
            &mut self.state.server_rng,
        );
        obs.record(&TelemetryEvent::ServerDistill {
            round,
            kd_loss: server_stats.mean_loss,
            proto_loss: 0.0,
            combined_loss: server_stats.mean_loss,
            batches: server_stats.batches,
        });
        emit_phase_timing(obs, round, Phase::ServerDistill, server_started);
    }

    fn driver(&self) -> &DriverState {
        &self.state.driver
    }

    fn driver_mut(&mut self) -> &mut DriverState {
        &mut self.state.driver
    }

    fn server_accuracy(&mut self) -> Option<f64> {
        Some(eval::accuracy(
            &mut self.state.server_model,
            &self.scenario.global_test,
        ))
    }

    fn client_accuracies(&mut self) -> Vec<f64> {
        client_accuracies(&mut self.state.clients, &self.scenario)
    }

    fn write_state(&self, w: &mut dyn StateSink) {
        snapshot::write_clients(w, &self.state.clients);
        snapshot::write_model(w, &self.state.server_model);
        snapshot::write_rng(w, &self.state.server_rng);
        snapshot::write_driver(w, &self.state.driver);
    }

    fn read_state(&mut self, r: &mut dyn StateSource) -> Result<(), SnapshotError> {
        snapshot::read_clients(r, &mut self.state.clients)?;
        snapshot::read_model(r, &mut self.state.server_model)?;
        self.state.server_rng = snapshot::read_rng(r)?;
        self.state.driver = snapshot::read_driver(r)?;
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use fedpkd_core::telemetry::NullObserver;
    use fedpkd_data::{Partition, ScenarioBuilder, SyntheticConfig};
    use fedpkd_tensor::models::DepthTier;

    fn scenario(alpha: f64, seed: u64) -> FederatedScenario {
        ScenarioBuilder::new(SyntheticConfig::cifar10_like())
            .clients(3)
            .samples(450)
            .public_size(120)
            .global_test_size(200)
            .partition(Partition::Dirichlet { alpha })
            .seed(seed)
            .build()
            .unwrap()
    }

    fn specs() -> Vec<ModelSpec> {
        vec![
            ModelSpec::ResMlp {
                input_dim: 32,
                num_classes: 10,
                tier: DepthTier::T11,
            };
            3
        ]
    }

    fn server_spec() -> ModelSpec {
        ModelSpec::ResMlp {
            input_dim: 32,
            num_classes: 10,
            tier: DepthTier::T20,
        }
    }

    fn config() -> BaselineConfig {
        BaselineConfig {
            local_epochs: 2,
            server_epochs: 2,
            learning_rate: 0.003,
            ..BaselineConfig::default()
        }
    }

    #[test]
    fn server_learns_something() {
        let mut algo = NaiveKd::new(scenario(0.5, 1), specs(), server_spec(), config(), 3).unwrap();
        let result = fedpkd_core::Driver::rounds(3).run_silent(&mut algo);
        let acc = result.best_server_accuracy().unwrap();
        assert!(acc > 0.2, "NaiveKD server accuracy {acc}");
    }

    #[test]
    fn aggregated_logits_accessor_matches_shape() {
        let mut algo = NaiveKd::new(scenario(0.5, 2), specs(), server_spec(), config(), 5).unwrap();
        let mut ledger = CommLedger::new();
        algo.run_round(
            0,
            &RoundContext::benign(fedpkd_netsim::Cohort::full(3)),
            &mut ledger,
            &mut NullObserver,
        );
        let agg = algo.aggregated_public_logits();
        assert_eq!(agg.shape(), &[120, 10]);
    }

    #[test]
    fn no_downlink_traffic() {
        let mut algo = NaiveKd::new(scenario(0.5, 3), specs(), server_spec(), config(), 7).unwrap();
        let result = fedpkd_core::Driver::rounds(1).run_silent(&mut algo);
        assert_eq!(result.ledger.direction_bytes(Direction::Downlink), 0);
        assert!(result.ledger.direction_bytes(Direction::Uplink) > 0);
    }
}
