//! FedET (Cho et al., 2022).

use std::time::Instant;

use crate::common::{
    build_clients, client_accuracies, for_each_active_client, validate_specs, Client,
};
use crate::BaselineConfig;
use fedpkd_core::eval;
use fedpkd_core::fedpkd::logits::aggregation_stats;
use fedpkd_core::fedpkd::CoreError;
use fedpkd_core::runtime::{DriverState, Federation};
use fedpkd_core::snapshot::{self, SnapshotError, StateSink, StateSource};
use fedpkd_core::telemetry::{emit_phase_timing, Phase, RoundObserver, TelemetryEvent};
use fedpkd_core::train::{train_distill, train_supervised, TrainStats};
use fedpkd_data::FederatedScenario;
use fedpkd_netsim::{CommLedger, Direction, Message, RoundContext};
use fedpkd_rng::Rng;
use fedpkd_tensor::models::{ClassifierModel, ModelSpec};
use fedpkd_tensor::ops::{row_entropy, softmax};
use fedpkd_tensor::serialize::{load_state_vector, state_vector};
use fedpkd_tensor::Tensor;

/// Heterogeneous **e**nsemble knowledge **t**ransfer: small (possibly
/// heterogeneous) client models teach a larger server model.
///
/// Each round: clients train locally and upload their *model parameters*
/// (the source of FedET's high communication cost that the paper notes);
/// the server rebuilds each client model, forms a confidence-weighted
/// ensemble over the public set — per-sample weights proportional to
/// `1 − H(p_c)/ln k`, the certainty of each client's prediction — and
/// distills the ensemble into the larger server model. Server logits on the
/// public set travel back and clients distill from them.
pub struct FedEt {
    scenario: FederatedScenario,
    client_specs: Vec<ModelSpec>,
    config: BaselineConfig,
    seed: u64,
    state: FedEtState,
}

/// The owned, snapshotable half of [`FedEt`]: everything that changes
/// from round to round. `scenario`, `client_specs`, `config`, and `seed`
/// are the static half — the per-round scratch models are rebuilt from
/// them, so they never enter a snapshot.
struct FedEtState {
    clients: Vec<Client>,
    server_model: ClassifierModel,
    server_rng: Rng,
    driver: DriverState,
}

impl FedEt {
    /// Assembles FedET over `scenario` with per-client specs and a (larger)
    /// server spec.
    ///
    /// # Errors
    ///
    /// Returns a [`CoreError`] if the config is invalid or the scenario/spec
    /// wiring is inconsistent.
    pub fn new(
        scenario: FederatedScenario,
        client_specs: Vec<ModelSpec>,
        server_spec: ModelSpec,
        config: BaselineConfig,
        seed: u64,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        validate_specs(&scenario, &client_specs, Some(&server_spec), false)?;
        let clients = build_clients(&client_specs, config.learning_rate, seed);
        let mut server_rng = Rng::stream(seed, 0);
        let server_model = server_spec.build(&mut server_rng);
        Ok(Self {
            scenario,
            client_specs,
            config,
            seed,
            state: FedEtState {
                clients,
                server_model,
                server_rng,
                driver: DriverState::new(),
            },
        })
    }
}

impl Federation for FedEt {
    fn name(&self) -> &'static str {
        "FedET"
    }

    fn num_clients(&self) -> usize {
        self.state.clients.len()
    }

    fn run_round(
        &mut self,
        round: usize,
        ctx: &RoundContext,
        ledger: &mut CommLedger,
        obs: &mut dyn RoundObserver,
    ) {
        let cohort = ctx.cohort();
        // No survivors: no uploads, so the ensemble is empty and the server
        // model carries over.
        if cohort.num_active() == 0 {
            return;
        }
        let config = &self.config;
        let public = &self.scenario.public;
        let k = self.scenario.num_classes;
        let all_ids: Vec<u32> = (0..public.len() as u32).collect();

        // Local training; parameters travel up (FedET's costly uplink) from
        // the survivors.
        let training_started = Instant::now();
        let updates: Vec<(usize, (Vec<f32>, TrainStats))> = for_each_active_client(
            &mut self.state.clients,
            &self.scenario.clients,
            cohort,
            |_, client, data| {
                let stats = train_supervised(
                    &mut client.model,
                    &data.train,
                    config.local_epochs,
                    config.batch_size,
                    &mut client.optimizer,
                    &mut client.rng,
                );
                (state_vector(&client.model), stats)
            },
        );
        for &(client, (_, ref stats)) in &updates {
            obs.record(&TelemetryEvent::ClientTrained {
                round,
                client,
                samples: self.scenario.clients[client].train.len(),
                mean_loss: stats.mean_loss,
            });
        }
        emit_phase_timing(obs, round, Phase::ClientTraining, training_started);
        let updates: Vec<(usize, Vec<f32>)> = updates
            .into_iter()
            .map(|(client, (params, _))| (client, params))
            .collect();
        for (client, params) in &updates {
            ledger.record(
                round,
                *client,
                Direction::Uplink,
                &Message::ModelUpdate {
                    params: params.clone(),
                },
            );
        }

        // Server-side confidence-weighted ensemble over the public set.
        let aggregation_started = Instant::now();
        let ln_k = (k as f32).ln();
        let mut weighted_sum = Tensor::zeros(&[public.len(), k]);
        let mut weight_total = vec![0.0f32; public.len()];
        let mut member_probs: Vec<Tensor> = Vec::new();
        for (i, params) in &updates {
            let i = *i;
            let mut scratch_rng = Rng::stream(self.seed, 1000 + i as u64);
            let mut scratch = self.client_specs[i].build(&mut scratch_rng);
            load_state_vector(&mut scratch, params).expect("spec matches upload");
            let probs = softmax(&eval::logits_on(&mut scratch, public), 1.0);
            let certainty: Vec<f32> = row_entropy(&probs)
                .into_iter()
                .map(|h| (1.0 - h / ln_k).max(1e-3))
                .collect();
            for r in 0..public.len() {
                let w = certainty[r];
                weight_total[r] += w;
                for (o, &p) in weighted_sum.row_mut(r).iter_mut().zip(probs.row(r)) {
                    *o += w * p;
                }
            }
            if obs.enabled() {
                member_probs.push(probs);
            }
        }
        for (r, total) in weight_total.iter().enumerate() {
            let norm = total.max(1e-9);
            for v in weighted_sum.row_mut(r) {
                *v /= norm;
            }
        }
        if obs.enabled() {
            // The entropy-based per-sample weights are FedET-specific; the
            // shared stats helper still measures ensemble disagreement.
            let stats = aggregation_stats(&member_probs, false);
            obs.record(&TelemetryEvent::LogitAggregation {
                round,
                clients: cohort.num_active(),
                variance_weighting: false,
                mean_client_weight: stats.mean_client_weight,
                disagreement: stats.disagreement,
            });
        }
        emit_phase_timing(obs, round, Phase::Aggregation, aggregation_started);

        // Distill ensemble → (larger) server model.
        let server_started = Instant::now();
        let server_stats = train_distill(
            &mut self.state.server_model,
            public.features(),
            &weighted_sum,
            config.gamma,
            1.0,
            config.server_epochs,
            config.batch_size,
            &mut fedpkd_tensor::optim::Adam::new(config.learning_rate),
            &mut self.state.server_rng,
        );
        obs.record(&TelemetryEvent::ServerDistill {
            round,
            kd_loss: server_stats.mean_loss,
            proto_loss: 0.0,
            combined_loss: server_stats.mean_loss,
            batches: server_stats.batches,
        });
        emit_phase_timing(obs, round, Phase::ServerDistill, server_started);

        // Server logits travel down; surviving clients distill.
        let distill_started = Instant::now();
        let server_probs = softmax(&eval::logits_on(&mut self.state.server_model, public), 1.0);
        let server_logits_msg = Message::Logits {
            sample_ids: all_ids,
            num_classes: k as u32,
            values: server_probs.as_slice().to_vec(),
        };
        for client in cohort.survivors() {
            ledger.record(round, client, Direction::Downlink, &server_logits_msg);
        }
        let target = &server_probs;
        let distill_stats: Vec<(usize, TrainStats)> = for_each_active_client(
            &mut self.state.clients,
            &self.scenario.clients,
            cohort,
            |_, client, _| {
                train_distill(
                    &mut client.model,
                    public.features(),
                    target,
                    config.gamma,
                    1.0,
                    config.digest_epochs,
                    config.batch_size,
                    &mut client.optimizer,
                    &mut client.rng,
                )
            },
        );
        for &(client, ref stats) in &distill_stats {
            obs.record(&TelemetryEvent::ClientDistilled {
                round,
                client,
                mean_loss: stats.mean_loss,
            });
        }
        emit_phase_timing(obs, round, Phase::ClientDistill, distill_started);
    }

    fn driver(&self) -> &DriverState {
        &self.state.driver
    }

    fn driver_mut(&mut self) -> &mut DriverState {
        &mut self.state.driver
    }

    fn server_accuracy(&mut self) -> Option<f64> {
        Some(eval::accuracy(
            &mut self.state.server_model,
            &self.scenario.global_test,
        ))
    }

    fn client_accuracies(&mut self) -> Vec<f64> {
        // FedET is not focused on client personalization (Fig. 5 caption),
        // but the client models exist, so their local accuracy is reported.
        client_accuracies(&mut self.state.clients, &self.scenario)
    }

    fn write_state(&self, w: &mut dyn StateSink) {
        snapshot::write_clients(w, &self.state.clients);
        snapshot::write_model(w, &self.state.server_model);
        snapshot::write_rng(w, &self.state.server_rng);
        snapshot::write_driver(w, &self.state.driver);
    }

    fn read_state(&mut self, r: &mut dyn StateSource) -> Result<(), SnapshotError> {
        snapshot::read_clients(r, &mut self.state.clients)?;
        snapshot::read_model(r, &mut self.state.server_model)?;
        self.state.server_rng = snapshot::read_rng(r)?;
        self.state.driver = snapshot::read_driver(r)?;
        Ok(())
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use fedpkd_data::{Partition, ScenarioBuilder, SyntheticConfig};
    use fedpkd_tensor::models::DepthTier;

    fn scenario(seed: u64) -> FederatedScenario {
        ScenarioBuilder::new(SyntheticConfig::cifar10_like())
            .clients(3)
            .samples(450)
            .public_size(120)
            .global_test_size(150)
            .partition(Partition::Dirichlet { alpha: 0.5 })
            .seed(seed)
            .build()
            .unwrap()
    }

    fn client_specs() -> Vec<ModelSpec> {
        [DepthTier::T11, DepthTier::T20, DepthTier::T29]
            .into_iter()
            .map(|tier| ModelSpec::ResMlp {
                input_dim: 32,
                num_classes: 10,
                tier,
            })
            .collect()
    }

    fn server_spec() -> ModelSpec {
        ModelSpec::ResMlp {
            input_dim: 32,
            num_classes: 10,
            tier: DepthTier::T56,
        }
    }

    fn config() -> BaselineConfig {
        BaselineConfig {
            local_epochs: 3,
            server_epochs: 4,
            digest_epochs: 1,
            learning_rate: 0.003,
            ..BaselineConfig::default()
        }
    }

    #[test]
    fn larger_server_learns_from_heterogeneous_clients() {
        let mut algo = FedEt::new(scenario(1), client_specs(), server_spec(), config(), 3).unwrap();
        let result = fedpkd_core::Driver::rounds(4).run_silent(&mut algo);
        let acc = result.best_server_accuracy().unwrap();
        assert!(acc > 0.3, "FedET server accuracy {acc}");
    }

    #[test]
    fn uplink_is_parameter_sized() {
        let mut algo = FedEt::new(scenario(2), client_specs(), server_spec(), config(), 5).unwrap();
        let result = fedpkd_core::Driver::rounds(1).run_silent(&mut algo);
        let up = result.ledger.direction_bytes(Direction::Uplink);
        let down = result.ledger.direction_bytes(Direction::Downlink);
        // Parameter uplink dwarfs logits downlink — the cost the paper
        // attributes to FedET.
        assert!(up > 10 * down, "uplink {up} vs downlink {down}");
    }

    #[test]
    fn rejects_mismatched_class_counts() {
        let bad_server = ModelSpec::ResMlp {
            input_dim: 32,
            num_classes: 12,
            tier: DepthTier::T56,
        };
        assert!(FedEt::new(scenario(3), client_specs(), bad_server, config(), 7).is_err());
    }
}
