//! Order-preserving chunked thread dispatch.
//!
//! This is the workspace's one parallelism idiom, shared by the per-client
//! round driver in `fedpkd-core::clients` (which re-exports
//! [`dispatch_chunked`]) and the row-parallel matmul path in
//! [`crate::kernels`]: split the work into contiguous chunks, run one
//! scoped thread per chunk capped at the machine's available parallelism,
//! and reassemble results in input order. Items (or output rows) never
//! share mutable state, so the result is bit-identical to the sequential
//! loop regardless of core count or scheduling.

/// Per-thread reusable scratch buffers for transient `f32` workspaces.
///
/// The hot kernels repack an operand into a packed layout on every call,
/// and under [`dispatch_stealing`] each client's training loop issues
/// thousands of such calls from the same worker thread. Allocating the
/// packed buffer fresh each time makes the allocator the bottleneck at
/// fleet scale; this pool hands each thread back the buffers it just
/// released, so steady-state training does no repack allocations at all.
///
/// The pool is thread-local, which makes it safe by construction under
/// every dispatch idiom in this module (scoped worker threads never share
/// a buffer) and keeps results bit-identical: a pooled buffer is handed
/// out with unspecified contents, so callers must fully overwrite the
/// range they read — exactly what the repack loops already do.
pub mod scratch {
    use std::cell::RefCell;

    /// Buffers retained per thread; deeper nesting than this frees on drop.
    const MAX_POOLED: usize = 4;

    thread_local! {
        static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    }

    /// Runs `f` over a scratch buffer of exactly `len` elements drawn from
    /// the calling thread's pool, returning the buffer to the pool after.
    ///
    /// The buffer's contents are **unspecified** on entry — stale data from
    /// earlier borrows is deliberately not cleared — so `f` must write every
    /// element it later reads. Nested calls compose (each borrow gets a
    /// distinct buffer); a panic inside `f` simply drops the buffer.
    pub fn with_f32s<T>(len: usize, f: impl FnOnce(&mut [f32]) -> T) -> T {
        let mut buf = POOL
            .with(|pool| pool.borrow_mut().pop())
            .unwrap_or_default();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        let result = f(&mut buf[..len]);
        POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
        result
    }

    /// Capacity (in `f32`s) currently parked in this thread's pool — an
    /// observability hook for the reuse tests.
    pub fn pooled_capacity() -> usize {
        POOL.with(|pool| pool.borrow().iter().map(Vec::capacity).sum())
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over `items` on at most [`max_workers`] worker threads —
/// contiguous chunks, one thread per chunk — and concatenates the
/// per-chunk results, preserving item order.
///
/// Each item is processed exactly once and the output order is independent
/// of scheduling, so results are bit-identical to a sequential map as long
/// as items don't share mutable state.
pub fn dispatch_chunked<I: Send, T: Send>(items: Vec<I>, f: impl Fn(I) -> T + Sync) -> Vec<T> {
    if items.is_empty() {
        return Vec::new();
    }
    let workers = max_workers().min(items.len());
    let chunk_size = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut remaining = items;
        while !remaining.is_empty() {
            let rest = remaining.split_off(chunk_size.min(remaining.len()));
            let chunk = std::mem::replace(&mut remaining, rest);
            handles.push(scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<T>>()));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Load-balance counters reported by [`dispatch_stealing`].
///
/// `peak_pending` is the scheduler's memory bound: the caller's commit
/// callback consumes results in canonical item order, so out-of-order
/// completions park in a reorder buffer whose occupancy is bounded by
/// worker skew (how far the fastest worker runs ahead of the slowest),
/// never by the total item count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealStats {
    /// Items executed by a worker other than the one they were seeded on.
    pub steals: usize,
    /// Peak number of completed results waiting in the reorder buffer for
    /// an earlier item to finish.
    pub peak_pending: usize,
}

/// Runs `task` over `items` on a bounded pool of `workers` threads with
/// work stealing, committing results on the *caller's* thread in ascending
/// item order.
///
/// This is the event-driven generalization of [`dispatch_chunked`]: each
/// worker is seeded with a contiguous chunk of items and pops from its own
/// deque front; a worker that runs dry steals from the back of another
/// worker's deque, so stragglers cannot idle the pool. Results stream back
/// to the caller as they complete and are handed to `commit(index, result)`
/// strictly in item order via a reorder buffer — so any fold performed in
/// `commit` accumulates in canonical order and is bit-identical to the
/// sequential loop regardless of worker count or interleaving.
///
/// `task` receives `(index, item)` and must not share mutable state across
/// items; `commit` runs on the calling thread only, so it may freely mutate
/// caller-local accumulators without locking.
pub fn dispatch_stealing<I: Send, T: Send>(
    items: Vec<I>,
    workers: usize,
    task: impl Fn(usize, I) -> T + Sync,
    commit: impl FnMut(usize, T),
) -> StealStats {
    let seeded: Vec<(usize, I)> = items.into_iter().enumerate().collect();
    run_stealing(seeded, workers, task, commit)
}

/// [`dispatch_stealing`] with an explicit **seeding schedule**: workers are
/// seeded with `items` in `schedule` order (a permutation of item indices)
/// instead of input order, while `commit` still observes results in
/// strictly ascending *original* item index.
///
/// This is the execution-plan entry point from [`crate::plan`]: a grouped
/// schedule lays same-group items (e.g. clients sharing a model template)
/// contiguously on the same worker's deque, so consecutive tasks reuse hot
/// template weights and same-sized scratch arenas. Because `task` depends
/// only on `(index, item)` and the reorder buffer commits in ascending
/// original index regardless of seeding, any schedule produces bit-identical
/// results to the sequential loop — batching commutes with commit order.
///
/// # Panics
///
/// Panics if `schedule` is not a permutation of `0..items.len()`.
pub fn dispatch_stealing_scheduled<I: Send, T: Send>(
    items: Vec<I>,
    schedule: &[usize],
    workers: usize,
    task: impl Fn(usize, I) -> T + Sync,
    commit: impl FnMut(usize, T),
) -> StealStats {
    let n = items.len();
    assert_eq!(schedule.len(), n, "schedule must cover every item");
    let mut slots: Vec<Option<I>> = items.into_iter().map(Some).collect();
    let seeded: Vec<(usize, I)> = schedule
        .iter()
        .map(|&idx| {
            let item = slots
                .get_mut(idx)
                .and_then(Option::take)
                .expect("schedule must be a permutation of item indices");
            (idx, item)
        })
        .collect();
    run_stealing(seeded, workers, task, commit)
}

/// Shared work-stealing core: `seeded` pairs each item with its canonical
/// commit index, in the order workers should drain them. Commits run on the
/// caller's thread in ascending canonical index whatever the seeding order.
fn run_stealing<I: Send, T: Send>(
    seeded: Vec<(usize, I)>,
    workers: usize,
    task: impl Fn(usize, I) -> T + Sync,
    mut commit: impl FnMut(usize, T),
) -> StealStats {
    let n = seeded.len();
    if n == 0 {
        return StealStats::default();
    }
    let workers = workers.clamp(1, n);
    let chunk = n.div_ceil(workers);
    let mut seeded = seeded.into_iter();
    let deques: Vec<std::sync::Mutex<std::collections::VecDeque<(usize, I)>>> = (0..workers)
        .map(|_| std::sync::Mutex::new(seeded.by_ref().take(chunk).collect()))
        .collect();
    let deques = &deques;
    let task = &task;
    let (tx, rx) = std::sync::mpsc::channel::<(usize, T, bool)>();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let own = deques[w].lock().expect("worker deque poisoned").pop_front();
                if let Some((idx, item)) = own {
                    if tx.send((idx, task(idx, item), false)).is_err() {
                        return;
                    }
                    continue;
                }
                // Own deque is dry: steal the *back* of another worker's
                // deque (the item its owner would reach last).
                let stolen = (1..workers).find_map(|off| {
                    deques[(w + off) % workers]
                        .lock()
                        .expect("worker deque poisoned")
                        .pop_back()
                });
                match stolen {
                    Some((idx, item)) => {
                        if tx.send((idx, task(idx, item), true)).is_err() {
                            return;
                        }
                    }
                    // Every deque is empty; no new items ever appear.
                    None => return,
                }
            });
        }
        drop(tx);
        let mut stats = StealStats::default();
        let mut pending = std::collections::BTreeMap::new();
        let mut next = 0usize;
        for (idx, result, stolen) in rx {
            if stolen {
                stats.steals += 1;
            }
            pending.insert(idx, result);
            stats.peak_pending = stats.peak_pending.max(pending.len());
            while let Some(result) = pending.remove(&next) {
                commit(next, result);
                next += 1;
            }
        }
        debug_assert_eq!(next, n, "every item must be committed exactly once");
        stats
    })
}

/// Splits `out` (a row-major buffer of `row_width`-wide rows) into
/// contiguous row chunks of at least `min_rows` rows each and runs
/// `f(first_row_index, chunk)` on one scoped thread per chunk.
///
/// Chunks are disjoint `&mut` slices, so no locking is needed and the
/// written buffer is identical to a sequential pass no matter how the
/// threads are scheduled. Shared by the row-parallel matmul path and the
/// row-parallel softmax/variance/trimmed-aggregation fast tiers — any
/// row-independent kernel can dispatch through it without changing bits.
pub fn for_each_row_chunk(
    out: &mut [f32],
    row_width: usize,
    min_rows: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert!(row_width > 0 && min_rows > 0);
    let rows = out.len() / row_width;
    let workers = max_workers().min(rows.div_ceil(min_rows)).max(1);
    if workers == 1 {
        // Single worker (one core, or too few rows): run inline — spawning
        // a scoped thread would only add latency.
        f(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(chunk_rows * row_width).enumerate() {
            scope.spawn(move || f(idx * chunk_rows, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_chunked_preserves_order_past_the_thread_cap() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * 2).collect();
        assert_eq!(dispatch_chunked(items, |i| i * 2), expected);
        assert!(dispatch_chunked(Vec::new(), |i: usize| i).is_empty());
    }

    #[test]
    fn stealing_commits_in_canonical_order_for_any_worker_count() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 2, 3, 8, 64, 1000] {
            let mut committed = Vec::new();
            let stats = dispatch_stealing(
                items.clone(),
                workers,
                |idx, i| {
                    assert_eq!(idx, i);
                    i * 3
                },
                |idx, r| committed.push((idx, r)),
            );
            let expected: Vec<(usize, usize)> = (0..257).map(|i| (i, i * 3)).collect();
            assert_eq!(committed, expected, "workers={workers}");
            assert!(stats.peak_pending <= 257);
        }
    }

    #[test]
    fn stealing_handles_empty_input() {
        let stats = dispatch_stealing(Vec::<usize>::new(), 4, |_, i| i, |_, _| panic!("no items"));
        assert_eq!(stats, StealStats::default());
    }

    #[test]
    fn stealing_rebalances_skewed_work() {
        // Seed all the slow items into the first worker's chunk; with
        // stealing the others must take some of them (unless the machine
        // is single-core, where no stealing can happen).
        let items: Vec<u64> = (0..64)
            .map(|i| if i < 32 { 2_000_000 } else { 10 })
            .collect();
        let mut sum = 0u64;
        let stats = dispatch_stealing(
            items,
            4,
            |_, spins| {
                let mut acc = 0u64;
                for k in 0..spins {
                    acc = acc.wrapping_add(k ^ (acc >> 3));
                }
                // Fold the busy-work in so the loop cannot be optimized out.
                1 + (acc & 1) / 2
            },
            |_, one| sum += one,
        );
        assert_eq!(sum, 64);
        if max_workers() > 1 {
            assert!(stats.steals > 0, "skewed chunks should trigger steals");
        }
    }

    #[test]
    fn scratch_buffers_are_reused_within_a_thread() {
        // Run on a dedicated thread so other tests' pool traffic cannot
        // interfere with the capacity accounting.
        std::thread::spawn(|| {
            let base = scratch::pooled_capacity();
            scratch::with_f32s(128, |buf| {
                assert_eq!(buf.len(), 128);
                buf.fill(1.0);
            });
            assert!(scratch::pooled_capacity() >= base + 128, "buffer parked");
            let parked = scratch::pooled_capacity();
            // A second, smaller borrow must reuse the parked buffer rather
            // than allocate: total pooled capacity stays flat.
            scratch::with_f32s(64, |buf| {
                assert_eq!(buf.len(), 64);
                assert!(buf.iter().all(|&v| v == 1.0), "stale contents kept");
            });
            assert_eq!(scratch::pooled_capacity(), parked);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn scratch_nested_borrows_get_distinct_buffers() {
        scratch::with_f32s(16, |outer| {
            outer.fill(2.0);
            scratch::with_f32s(16, |inner| inner.fill(3.0));
            assert!(outer.iter().all(|&v| v == 2.0));
        });
    }

    #[test]
    fn row_chunks_cover_every_row_exactly_once() {
        let rows = 97;
        let width = 5;
        let mut out = vec![0.0f32; rows * width];
        for_each_row_chunk(&mut out, width, 8, |row0, chunk| {
            for (r, row) in chunk.chunks_mut(width).enumerate() {
                for v in row {
                    *v += (row0 + r) as f32;
                }
            }
        });
        for (r, row) in out.chunks(width).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r}: {row:?}");
        }
    }
}
