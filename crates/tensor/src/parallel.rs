//! Order-preserving chunked thread dispatch.
//!
//! This is the workspace's one parallelism idiom, shared by the per-client
//! round driver in `fedpkd-core::clients` (which re-exports
//! [`dispatch_chunked`]) and the row-parallel matmul path in
//! [`crate::kernels`]: split the work into contiguous chunks, run one
//! scoped thread per chunk capped at the machine's available parallelism,
//! and reassemble results in input order. Items (or output rows) never
//! share mutable state, so the result is bit-identical to the sequential
//! loop regardless of core count or scheduling.

/// The machine's available parallelism (1 if it cannot be determined).
pub fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f` over `items` on at most [`max_workers`] worker threads —
/// contiguous chunks, one thread per chunk — and concatenates the
/// per-chunk results, preserving item order.
///
/// Each item is processed exactly once and the output order is independent
/// of scheduling, so results are bit-identical to a sequential map as long
/// as items don't share mutable state.
pub fn dispatch_chunked<I: Send, T: Send>(items: Vec<I>, f: impl Fn(I) -> T + Sync) -> Vec<T> {
    if items.is_empty() {
        return Vec::new();
    }
    let workers = max_workers().min(items.len());
    let chunk_size = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut remaining = items;
        while !remaining.is_empty() {
            let rest = remaining.split_off(chunk_size.min(remaining.len()));
            let chunk = std::mem::replace(&mut remaining, rest);
            handles.push(scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<T>>()));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Splits `out` (a row-major buffer of `row_width`-wide rows) into
/// contiguous row chunks of at least `min_rows` rows each and runs
/// `f(first_row_index, chunk)` on one scoped thread per chunk.
///
/// Chunks are disjoint `&mut` slices, so no locking is needed and the
/// written buffer is identical to a sequential pass no matter how the
/// threads are scheduled.
pub(crate) fn for_each_row_chunk(
    out: &mut [f32],
    row_width: usize,
    min_rows: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert!(row_width > 0 && min_rows > 0);
    let rows = out.len() / row_width;
    let workers = max_workers().min(rows.div_ceil(min_rows)).max(1);
    if workers == 1 {
        // Single worker (one core, or too few rows): run inline — spawning
        // a scoped thread would only add latency.
        f(0, out);
        return;
    }
    let chunk_rows = rows.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        for (idx, chunk) in out.chunks_mut(chunk_rows * row_width).enumerate() {
            scope.spawn(move || f(idx * chunk_rows, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_chunked_preserves_order_past_the_thread_cap() {
        let items: Vec<usize> = (0..100).collect();
        let expected: Vec<usize> = items.iter().map(|i| i * 2).collect();
        assert_eq!(dispatch_chunked(items, |i| i * 2), expected);
        assert!(dispatch_chunked(Vec::new(), |i: usize| i).is_empty());
    }

    #[test]
    fn row_chunks_cover_every_row_exactly_once() {
        let rows = 97;
        let width = 5;
        let mut out = vec![0.0f32; rows * width];
        for_each_row_chunk(&mut out, width, 8, |row0, chunk| {
            for (r, row) in chunk.chunks_mut(width).enumerate() {
                for v in row {
                    *v += (row0 + r) as f32;
                }
            }
        });
        for (r, row) in out.chunks(width).enumerate() {
            assert!(row.iter().all(|&v| v == r as f32), "row {r}: {row:?}");
        }
    }
}
