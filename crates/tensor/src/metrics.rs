//! Classification metrics.

use crate::Tensor;

/// Fraction of rows whose argmax matches the label.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of logit rows.
///
/// # Examples
///
/// ```
/// use fedpkd_tensor::{metrics, Tensor};
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0, 3.0], &[2, 2])?;
/// assert_eq!(metrics::accuracy(&logits, &[0, 1]), 1.0);
/// # Ok::<(), fedpkd_tensor::TensorError>(())
/// ```
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "one label per row required");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
    correct as f64 / labels.len() as f64
}

/// Per-class accuracy: element `j` is the accuracy over samples whose true
/// label is `j`, or `NaN` when the class has no samples.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of rows or any label is
/// `>= num_classes`.
pub fn per_class_accuracy(logits: &Tensor, labels: &[usize], num_classes: usize) -> Vec<f64> {
    assert_eq!(logits.rows(), labels.len(), "one label per row required");
    let preds = logits.argmax_rows();
    let mut correct = vec![0usize; num_classes];
    let mut total = vec![0usize; num_classes];
    for (&p, &y) in preds.iter().zip(labels) {
        assert!(y < num_classes, "label {y} out of range");
        total[y] += 1;
        if p == y {
            correct[y] += 1;
        }
    }
    correct
        .into_iter()
        .zip(total)
        .map(|(c, t)| {
            if t == 0 {
                f64::NAN
            } else {
                c as f64 / t as f64
            }
        })
        .collect()
}

/// A confusion matrix over `num_classes` classes.
///
/// Entry `(i, j)` counts samples with true label `i` predicted as `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    counts: Vec<usize>,
    num_classes: usize,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0`.
    pub fn new(num_classes: usize) -> Self {
        assert!(num_classes > 0, "need at least one class");
        Self {
            counts: vec![0; num_classes * num_classes],
            num_classes,
        }
    }

    /// Records a batch of predictions.
    ///
    /// # Panics
    ///
    /// Panics if label counts mismatch or a label/prediction is out of range.
    pub fn record(&mut self, logits: &Tensor, labels: &[usize]) {
        assert_eq!(logits.rows(), labels.len(), "one label per row required");
        for (p, &y) in logits.argmax_rows().into_iter().zip(labels) {
            assert!(y < self.num_classes && p < self.num_classes, "out of range");
            self.counts[y * self.num_classes + p] += 1;
        }
    }

    /// Count of samples with true label `actual` predicted as `predicted`.
    pub fn count(&self, actual: usize, predicted: usize) -> usize {
        self.counts[actual * self.num_classes + predicted]
    }

    /// Total samples recorded.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass). Zero if nothing was recorded.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.num_classes).map(|i| self.count(i, i)).sum();
        diag as f64 / total as f64
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = t(&[1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn accuracy_empty_is_zero() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]), 0.0);
    }

    #[test]
    fn per_class_accuracy_splits_by_label() {
        // Class 0 predicted right once of twice; class 1 right always.
        let logits = t(&[1., 0., 0., 1., 0., 1.], &[3, 2]);
        let pca = per_class_accuracy(&logits, &[0, 0, 1], 2);
        assert!((pca[0] - 0.5).abs() < 1e-9);
        assert!((pca[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_class_accuracy_nan_for_absent_class() {
        let logits = t(&[1., 0.], &[1, 2]);
        let pca = per_class_accuracy(&logits, &[0], 2);
        assert!(pca[1].is_nan());
    }

    #[test]
    fn confusion_matrix_records_and_scores() {
        let mut cm = ConfusionMatrix::new(2);
        let logits = t(&[1., 0., 0., 1., 1., 0.], &[3, 2]);
        cm.record(&logits, &[0, 1, 1]);
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 1);
        assert_eq!(cm.total(), 3);
        assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(cm.num_classes(), 2);
    }

    #[test]
    fn empty_confusion_matrix_accuracy_is_zero() {
        assert_eq!(ConfusionMatrix::new(3).accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn accuracy_validates_lengths() {
        accuracy(&Tensor::zeros(&[2, 2]), &[0]);
    }
}
