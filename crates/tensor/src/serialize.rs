//! Parameter (de)serialization and byte-size accounting.
//!
//! FedAvg-family algorithms ship whole parameter vectors between clients and
//! the server; the communication experiments (Fig. 3, Table I) need the
//! exact byte cost of doing so. This module flattens any [`Layer`]'s
//! parameters into a `Vec<f32>` (in stable visitation order), restores them,
//! and reports wire sizes.

use crate::nn::Layer;
use crate::TensorError;

/// Bytes used to encode one parameter scalar on the wire.
pub const BYTES_PER_PARAM: usize = std::mem::size_of::<f32>();

/// Flattens all parameters of `model` into a single vector, in the model's
/// stable visitation order.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::Rng;
/// use fedpkd_tensor::nn::Linear;
/// use fedpkd_tensor::serialize::param_vector;
///
/// let mut rng = Rng::seed_from_u64(0);
/// let layer = Linear::new(3, 2, &mut rng);
/// assert_eq!(param_vector(&layer).len(), 3 * 2 + 2);
/// ```
pub fn param_vector(model: &dyn Layer) -> Vec<f32> {
    let mut out = Vec::with_capacity(model.param_count());
    model.visit_params(&mut |p| out.extend_from_slice(p.value.as_slice()));
    out
}

/// Flattens all parameter *gradients* of `model` into a single vector.
pub fn grad_vector(model: &dyn Layer) -> Vec<f32> {
    let mut out = Vec::with_capacity(model.param_count());
    model.visit_params(&mut |p| out.extend_from_slice(p.grad.as_slice()));
    out
}

/// Loads a flat parameter vector (as produced by [`param_vector`]) back into
/// `model`.
///
/// # Errors
///
/// Returns [`TensorError::ParamLengthMismatch`] if `values` does not have
/// exactly as many entries as the model has parameters; the model is left
/// unchanged in that case.
pub fn load_param_vector(model: &mut dyn Layer, values: &[f32]) -> Result<(), TensorError> {
    let expected = model.param_count();
    if values.len() != expected {
        return Err(TensorError::ParamLengthMismatch {
            expected,
            actual: values.len(),
        });
    }
    let mut offset = 0usize;
    model.visit_params_mut(&mut |p| {
        let len = p.value.len();
        p.value
            .as_mut_slice()
            .copy_from_slice(&values[offset..offset + len]);
        offset += len;
    });
    Ok(())
}

/// Wire size, in bytes, of shipping this model's full parameter vector.
pub fn param_byte_len(model: &dyn Layer) -> usize {
    model.param_count() * BYTES_PER_PARAM
}

/// Flattens the model's *transferable state* — all parameters followed by
/// all non-trainable buffers (batch-norm running statistics) — into one
/// vector. This is what parameter-averaging FL algorithms must ship: a
/// model restored from parameters alone would evaluate with stale
/// normalization statistics.
pub fn state_vector(model: &dyn Layer) -> Vec<f32> {
    let mut out = param_vector(model);
    model.visit_buffers(&mut |b| out.extend_from_slice(b));
    out
}

/// Total scalar count of the transferable state (parameters + buffers).
pub fn state_len(model: &dyn Layer) -> usize {
    model.param_count() + model.buffer_count()
}

/// Loads a flat state vector (as produced by [`state_vector`]) back into
/// `model`, restoring parameters and buffers.
///
/// # Errors
///
/// Returns [`TensorError::ParamLengthMismatch`] if `values` does not match
/// [`state_len`]; parameters may be partially written in that case only if
/// the length matched the parameter section (it cannot, since the total is
/// checked first).
pub fn load_state_vector(model: &mut dyn Layer, values: &[f32]) -> Result<(), TensorError> {
    let expected = state_len(model);
    if values.len() != expected {
        return Err(TensorError::ParamLengthMismatch {
            expected,
            actual: values.len(),
        });
    }
    let n_params = model.param_count();
    load_param_vector(model, &values[..n_params])?;
    let mut offset = n_params;
    model.visit_buffers_mut(&mut |b| {
        b.copy_from_slice(&values[offset..offset + b.len()]);
        offset += b.len();
    });
    Ok(())
}

/// Averages several parameter vectors with the given non-negative weights
/// (the FedAvg aggregation of Eq. 1).
///
/// # Errors
///
/// Returns [`TensorError::ParamLengthMismatch`] if the vectors have unequal
/// lengths, or [`TensorError::ShapeDataMismatch`] if no vectors are given or
/// the weights do not match the vectors in number / sum to zero.
pub fn weighted_average(vectors: &[Vec<f32>], weights: &[f64]) -> Result<Vec<f32>, TensorError> {
    if vectors.is_empty() || vectors.len() != weights.len() {
        return Err(TensorError::ShapeDataMismatch {
            expected: vectors.len(),
            actual: weights.len(),
        });
    }
    let len = vectors[0].len();
    for v in vectors {
        if v.len() != len {
            return Err(TensorError::ParamLengthMismatch {
                expected: len,
                actual: v.len(),
            });
        }
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || weights.iter().any(|w| *w < 0.0) {
        return Err(TensorError::ShapeDataMismatch {
            expected: 1,
            actual: 0,
        });
    }
    let mut out = vec![0.0f64; len];
    for (vec, &w) in vectors.iter().zip(weights) {
        let w = w / total;
        for (o, &v) in out.iter_mut().zip(vec) {
            *o += w * v as f64;
        }
    }
    Ok(out.into_iter().map(|v| v as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Linear, Relu, Sequential};
    use crate::Tensor;
    use fedpkd_rng::Rng;

    fn model(seed: u64) -> Sequential {
        let mut rng = Rng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Linear::new(3, 4, &mut rng)) as Box<dyn Layer>,
            Box::new(Relu::new()),
            Box::new(Linear::new(4, 2, &mut rng)),
        ])
    }

    #[test]
    fn round_trip_restores_outputs() {
        let mut a = model(1);
        let mut b = model(2);
        let x = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut Rng::seed_from_u64(3));
        let ya = a.forward(&x, false);
        let yb = b.forward(&x, false);
        assert_ne!(ya, yb, "different seeds give different models");
        let params = param_vector(&a);
        load_param_vector(&mut b, &params).unwrap();
        let yb2 = b.forward(&x, false);
        assert_eq!(ya, yb2, "loading parameters must transplant the model");
    }

    #[test]
    fn length_mismatch_is_rejected_and_leaves_model_intact() {
        let mut m = model(1);
        let before = param_vector(&m);
        let err = load_param_vector(&mut m, &[1.0, 2.0]);
        assert!(matches!(err, Err(TensorError::ParamLengthMismatch { .. })));
        assert_eq!(param_vector(&m), before);
    }

    #[test]
    fn byte_len_counts_f32s() {
        let m = model(1);
        assert_eq!(param_byte_len(&m), m.param_count() * 4);
        assert_eq!(m.param_count(), 3 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn grad_vector_matches_param_layout() {
        let mut m = model(1);
        let x = Tensor::full(&[1, 3], 1.0);
        m.forward(&x, true);
        m.backward(&Tensor::full(&[1, 2], 1.0));
        let g = grad_vector(&m);
        assert_eq!(g.len(), m.param_count());
        assert!(g.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn weighted_average_uniform() {
        let a = vec![1.0f32, 2.0];
        let b = vec![3.0f32, 4.0];
        let avg = weighted_average(&[a, b], &[1.0, 1.0]).unwrap();
        assert_eq!(avg, vec![2.0, 3.0]);
    }

    #[test]
    fn weighted_average_respects_weights() {
        let a = vec![0.0f32];
        let b = vec![10.0f32];
        let avg = weighted_average(&[a, b], &[3.0, 1.0]).unwrap();
        assert!((avg[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn weighted_average_rejects_bad_inputs() {
        assert!(weighted_average(&[], &[]).is_err());
        assert!(weighted_average(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(weighted_average(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 1.0]).is_err());
        assert!(weighted_average(&[vec![1.0]], &[0.0]).is_err());
        assert!(weighted_average(&[vec![1.0], vec![2.0]], &[1.0, -1.0]).is_err());
    }

    #[test]
    fn state_vector_includes_batchnorm_statistics() {
        use crate::nn::BatchNorm1d;
        let mut rng = Rng::seed_from_u64(20);
        let mut m = Sequential::new(vec![
            Box::new(Linear::new(3, 4, &mut rng)) as Box<dyn Layer>,
            Box::new(BatchNorm1d::new(4)),
        ]);
        assert_eq!(m.buffer_count(), 8, "running mean + var");
        assert_eq!(state_len(&m), m.param_count() + 8);
        // Train a little so the running stats move off their init.
        for _ in 0..10 {
            let x = Tensor::randn(&[8, 3], 1.0, &mut Rng::seed_from_u64(21));
            m.forward(&x.map(|v| v + 3.0), true);
        }
        let state = state_vector(&m);
        // Transplant into a fresh model: eval outputs must match exactly.
        let mut rng2 = Rng::seed_from_u64(22);
        let mut fresh = Sequential::new(vec![
            Box::new(Linear::new(3, 4, &mut rng2)) as Box<dyn Layer>,
            Box::new(BatchNorm1d::new(4)),
        ]);
        load_state_vector(&mut fresh, &state).unwrap();
        let x = Tensor::randn(&[5, 3], 1.0, &mut Rng::seed_from_u64(23));
        assert_eq!(m.forward(&x, false), fresh.forward(&x, false));
        // Restoring parameters alone would NOT reproduce eval outputs.
        let mut rng3 = Rng::seed_from_u64(24);
        let mut params_only = Sequential::new(vec![
            Box::new(Linear::new(3, 4, &mut rng3)) as Box<dyn Layer>,
            Box::new(BatchNorm1d::new(4)),
        ]);
        load_param_vector(&mut params_only, &param_vector(&m)).unwrap();
        assert_ne!(m.forward(&x, false), params_only.forward(&x, false));
    }

    #[test]
    fn load_state_vector_validates_length() {
        let mut m = model(3);
        assert!(matches!(
            load_state_vector(&mut m, &[0.0; 2]),
            Err(TensorError::ParamLengthMismatch { .. })
        ));
    }

    #[test]
    fn bufferless_model_state_equals_params() {
        let m = model(4);
        assert_eq!(state_vector(&m), param_vector(&m));
        assert_eq!(state_len(&m), m.param_count());
    }

    #[test]
    fn fedavg_of_identical_models_is_identity() {
        let m = model(7);
        let p = param_vector(&m);
        let avg = weighted_average(&[p.clone(), p.clone(), p.clone()], &[1.0, 2.0, 5.0]).unwrap();
        for (a, b) in avg.iter().zip(&p) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
