//! Classifier models with an explicit feature/head split.
//!
//! FedPKD needs access to the *penultimate feature embedding* of every model
//! — prototypes are class means of those embeddings (Eq. 5), and the
//! prototype losses (Eqs. 12 and 16) backpropagate through them. A
//! [`ClassifierModel`] therefore splits every network into a `backbone`
//! (input → feature space) and a linear `head` (feature space → logits), and
//! supports joint backpropagation of a logit gradient plus an extra feature
//! gradient.
//!
//! The paper evaluates ResNet11/20/29 clients and a ResNet56 server. This
//! module provides matching capacity tiers in two families:
//! residual MLPs ([`ModelSpec::ResMlp`]) for the vector-mode synthetic data
//! used by the experiment harness, and small residual conv nets
//! ([`ModelSpec::ConvNet`]) for image-mode data.

use crate::nn::{
    AvgPool2d, BatchNorm1d, Conv2d, Flatten, GlobalAvgPool2d, Layer, Linear, Param, Relu, Residual,
    Sequential,
};
use crate::Tensor;
use fedpkd_rng::Rng;

/// The shared feature-embedding width of every tiered model.
///
/// Prototypes are exchanged and aggregated *across* heterogeneous models
/// (Eq. 8 of the paper), which requires all models — every client tier and
/// the server — to embed into a common feature space, exactly as in
/// FedProto. Tiered builders therefore end their backbone with a projection
/// to this width; capacity differences live in the hidden layers.
pub const SHARED_FEATURE_DIM: usize = 64;

/// A classifier split into a feature backbone and a linear logit head.
pub struct ClassifierModel {
    backbone: Sequential,
    head: Linear,
    feature_dim: usize,
    num_classes: usize,
}

impl ClassifierModel {
    /// Assembles a model from a backbone and a matching head.
    ///
    /// # Panics
    ///
    /// Panics if the head's input width differs from `feature_dim`.
    pub fn new(backbone: Sequential, head: Linear, feature_dim: usize) -> Self {
        assert_eq!(head.in_features(), feature_dim, "head width mismatch");
        let num_classes = head.out_features();
        Self {
            backbone,
            head,
            feature_dim,
            num_classes,
        }
    }

    /// Width of the feature embedding (prototype dimension).
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Runs only the backbone, returning feature embeddings `[batch, d]`.
    ///
    /// The returned tensor is moved straight out of the backbone; the
    /// activations [`backward_dual`](Self::backward_dual) needs live inside
    /// the layers themselves, so no feature copy is kept here. Eval paths
    /// that never backpropagate therefore pay zero feature copies.
    pub fn forward_features(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.backbone.forward(input, train)
    }

    /// Runs the full model, returning `(features, logits)`.
    pub fn forward_full(&mut self, input: &Tensor, train: bool) -> (Tensor, Tensor) {
        let features = self.forward_features(input, train);
        let logits = self.head.forward(&features, train);
        (features, logits)
    }

    /// Runs the full model, returning logits only.
    pub fn forward_logits(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.forward_full(input, train).1
    }

    /// Backpropagates a logit gradient plus an optional extra gradient on
    /// the feature embedding (the prototype-loss path). Returns the input
    /// gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before a forward pass, or if `feature_grad` has a
    /// different shape than the cached features.
    pub fn backward_dual(&mut self, logit_grad: &Tensor, feature_grad: Option<&Tensor>) -> Tensor {
        let mut g_features = self.head.backward(logit_grad);
        if let Some(extra) = feature_grad {
            g_features
                .axpy(1.0, extra)
                .expect("feature gradient shape mismatch");
        }
        self.backbone.backward(&g_features)
    }
}

impl std::fmt::Debug for ClassifierModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClassifierModel")
            .field("feature_dim", &self.feature_dim)
            .field("num_classes", &self.num_classes)
            .field("params", &self.param_count())
            .finish()
    }
}

impl Layer for ClassifierModel {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.forward_logits(input, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_dual(grad_out, None)
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.backbone.visit_params_mut(f);
        self.head.visit_params_mut(f);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.backbone.visit_params(f);
        self.head.visit_params(f);
    }

    fn visit_buffers(&self, f: &mut dyn FnMut(&[f32])) {
        self.backbone.visit_buffers(f);
        self.head.visit_buffers(f);
    }

    fn visit_buffers_mut(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        self.backbone.visit_buffers_mut(f);
        self.head.visit_buffers_mut(f);
    }
}

/// Capacity tiers mirroring the paper's ResNet depths.
///
/// The ordering `T11 < T20 < T29 < T56` preserves the capacity relationship
/// between the paper's client models (ResNet11/20/29) and server model
/// (ResNet56).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepthTier {
    /// Analog of ResNet11 (smallest client tier).
    T11,
    /// Analog of ResNet20 (the homogeneous-setting client model).
    T20,
    /// Analog of ResNet29 (largest client tier).
    T29,
    /// Analog of ResNet56 (the server model).
    T56,
}

impl DepthTier {
    /// Number of residual blocks in this tier, `(depth − 2) / 6` rounded as
    /// in the CIFAR ResNet family.
    pub fn blocks(&self) -> usize {
        match self {
            Self::T11 => 2,
            Self::T20 => 3,
            Self::T29 => 5,
            Self::T56 => 9,
        }
    }

    /// Hidden width of this tier.
    pub fn width(&self) -> usize {
        match self {
            Self::T11 => 48,
            Self::T20 => 64,
            Self::T29 => 80,
            Self::T56 => 128,
        }
    }

    /// Human-readable name matching the paper's model names.
    pub fn name(&self) -> &'static str {
        match self {
            Self::T11 => "ResNet11",
            Self::T20 => "ResNet20",
            Self::T29 => "ResNet29",
            Self::T56 => "ResNet56",
        }
    }
}

impl std::fmt::Display for DepthTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A declarative model architecture, buildable from a seed.
///
/// Heterogeneous federated settings hand each client a different spec; the
/// spec (not a built model) is what experiment configurations store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelSpec {
    /// A plain multilayer perceptron. `dims` lists layer widths from input
    /// to the feature layer; the classification head is appended
    /// automatically.
    Mlp {
        /// Layer widths `[input, hidden…, feature]`.
        dims: Vec<usize>,
        /// Number of output classes.
        num_classes: usize,
    },
    /// A residual MLP with the given capacity tier (the vector-mode analog
    /// of the paper's CIFAR ResNets).
    ResMlp {
        /// Input feature width.
        input_dim: usize,
        /// Number of output classes.
        num_classes: usize,
        /// Capacity tier.
        tier: DepthTier,
    },
    /// A small residual convolutional network for `[n, c, h, w]` inputs.
    ConvNet {
        /// Input channels.
        in_channels: usize,
        /// Input spatial size (square).
        image_size: usize,
        /// Number of output classes.
        num_classes: usize,
        /// Capacity tier (controls channel width and block count).
        tier: DepthTier,
    },
}

impl ModelSpec {
    /// Builds the model with weights drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (e.g. an MLP with fewer than two
    /// dims or zero classes).
    pub fn build(&self, rng: &mut Rng) -> ClassifierModel {
        match self {
            Self::Mlp { dims, num_classes } => build_mlp(dims, *num_classes, rng),
            Self::ResMlp {
                input_dim,
                num_classes,
                tier,
            } => build_res_mlp(*input_dim, *num_classes, *tier, rng),
            Self::ConvNet {
                in_channels,
                image_size,
                num_classes,
                tier,
            } => build_conv_net(*in_channels, *image_size, *num_classes, *tier, rng),
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        match self {
            Self::Mlp { num_classes, .. }
            | Self::ResMlp { num_classes, .. }
            | Self::ConvNet { num_classes, .. } => *num_classes,
        }
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Self::Mlp { dims, num_classes } => format!("Mlp{dims:?}→{num_classes}"),
            Self::ResMlp { tier, .. } => format!("{}(res-mlp)", tier.name()),
            Self::ConvNet { tier, .. } => format!("{}(conv)", tier.name()),
        }
    }
}

/// Builds a plain MLP: `dims[0] → … → dims.last()` with ReLU between layers,
/// plus a linear head to `num_classes`.
///
/// # Panics
///
/// Panics if `dims` has fewer than two entries or `num_classes == 0`.
pub fn build_mlp(dims: &[usize], num_classes: usize, rng: &mut Rng) -> ClassifierModel {
    assert!(dims.len() >= 2, "MLP needs at least input and feature dims");
    assert!(num_classes > 0, "need at least one class");
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    for w in dims.windows(2) {
        layers.push(Box::new(Linear::fused_relu(w[0], w[1], rng)));
    }
    let feature_dim = *dims.last().expect("validated non-empty");
    let head = Linear::new(feature_dim, num_classes, rng);
    ClassifierModel::new(Sequential::new(layers), head, feature_dim)
}

/// Builds a residual MLP of the given capacity tier: a stem projecting the
/// input to the tier width, `tier.blocks()` pre-activation residual blocks
/// with batch normalization, a projection to the crate-wide
/// [`SHARED_FEATURE_DIM`] (so prototypes are comparable across tiers), and a
/// linear head.
///
/// # Panics
///
/// Panics if `input_dim` or `num_classes` is zero.
pub fn build_res_mlp(
    input_dim: usize,
    num_classes: usize,
    tier: DepthTier,
    rng: &mut Rng,
) -> ClassifierModel {
    assert!(input_dim > 0 && num_classes > 0, "degenerate ResMlp spec");
    let width = tier.width();
    let mut layers: Vec<Box<dyn Layer>> = vec![Box::new(Linear::fused_relu(input_dim, width, rng))];
    for _ in 0..tier.blocks() {
        let body = Sequential::new(vec![
            Box::new(BatchNorm1d::new(width)) as Box<dyn Layer>,
            Box::new(Linear::fused_relu(width, width, rng)),
            Box::new(Linear::new(width, width, rng)),
        ]);
        layers.push(Box::new(Residual::new(Box::new(body))));
    }
    layers.push(Box::new(BatchNorm1d::new(width)));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(Linear::fused_relu(width, SHARED_FEATURE_DIM, rng)));
    let head = Linear::new(SHARED_FEATURE_DIM, num_classes, rng);
    ClassifierModel::new(Sequential::new(layers), head, SHARED_FEATURE_DIM)
}

/// Builds a small residual conv net: a 3×3 stem, `tier.blocks()/2 + 1`
/// residual conv blocks at the tier's channel width (scaled down 4× from the
/// MLP width), average + global-average pooling, and a projection to
/// [`SHARED_FEATURE_DIM`] feeding the head.
///
/// # Panics
///
/// Panics if any dimension is zero or `image_size < 4`.
pub fn build_conv_net(
    in_channels: usize,
    image_size: usize,
    num_classes: usize,
    tier: DepthTier,
    rng: &mut Rng,
) -> ClassifierModel {
    assert!(
        in_channels > 0 && num_classes > 0 && image_size >= 4,
        "degenerate ConvNet spec"
    );
    let channels = (tier.width() / 4).max(8);
    let blocks = tier.blocks() / 2 + 1;
    let mut layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(in_channels, channels, 3, 1, 1, rng)),
        Box::new(Relu::new()),
    ];
    for _ in 0..blocks {
        let body = Sequential::new(vec![
            Box::new(Conv2d::new(channels, channels, 3, 1, 1, rng)) as Box<dyn Layer>,
            Box::new(Relu::new()),
            Box::new(Conv2d::new(channels, channels, 3, 1, 1, rng)),
        ]);
        layers.push(Box::new(Residual::new(Box::new(body))));
        layers.push(Box::new(Relu::new()));
    }
    layers.push(Box::new(AvgPool2d::new(2, 2)));
    layers.push(Box::new(GlobalAvgPool2d::new()));
    layers.push(Box::new(Flatten::new()));
    layers.push(Box::new(Linear::fused_relu(
        channels,
        SHARED_FEATURE_DIM,
        rng,
    )));
    let head = Linear::new(SHARED_FEATURE_DIM, num_classes, rng);
    ClassifierModel::new(Sequential::new(layers), head, SHARED_FEATURE_DIM)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{CrossEntropy, Mse};
    use crate::optim::{Adam, Optimizer};

    #[test]
    fn tiers_are_capacity_ordered() {
        let mut rng = Rng::seed_from_u64(1);
        let counts: Vec<usize> = [
            DepthTier::T11,
            DepthTier::T20,
            DepthTier::T29,
            DepthTier::T56,
        ]
        .iter()
        .map(|&t| build_res_mlp(16, 10, t, &mut rng).param_count())
        .collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "{counts:?}");
    }

    #[test]
    fn tier_names_match_paper() {
        assert_eq!(DepthTier::T20.name(), "ResNet20");
        assert_eq!(DepthTier::T56.to_string(), "ResNet56");
    }

    #[test]
    fn forward_full_shapes() {
        let mut rng = Rng::seed_from_u64(2);
        let mut m = build_res_mlp(8, 5, DepthTier::T11, &mut rng);
        let x = Tensor::zeros(&[3, 8]);
        let (features, logits) = m.forward_full(&x, false);
        assert_eq!(features.shape(), &[3, m.feature_dim()]);
        assert_eq!(logits.shape(), &[3, 5]);
        assert_eq!(m.num_classes(), 5);
    }

    #[test]
    fn mlp_builder_shapes() {
        let mut rng = Rng::seed_from_u64(3);
        let mut m = build_mlp(&[4, 16, 8], 3, &mut rng);
        assert_eq!(m.feature_dim(), 8);
        let y = m.forward_logits(&Tensor::zeros(&[2, 4]), false);
        assert_eq!(y.shape(), &[2, 3]);
    }

    #[test]
    fn model_spec_builds_and_describes() {
        let mut rng = Rng::seed_from_u64(4);
        let specs = [
            ModelSpec::Mlp {
                dims: vec![4, 8],
                num_classes: 2,
            },
            ModelSpec::ResMlp {
                input_dim: 4,
                num_classes: 2,
                tier: DepthTier::T11,
            },
        ];
        for spec in &specs {
            let m = spec.build(&mut rng);
            assert_eq!(m.num_classes(), spec.num_classes());
            assert!(!spec.describe().is_empty());
        }
    }

    #[test]
    fn conv_net_forward_shapes() {
        let mut rng = Rng::seed_from_u64(5);
        let spec = ModelSpec::ConvNet {
            in_channels: 3,
            image_size: 8,
            num_classes: 10,
            tier: DepthTier::T11,
        };
        let mut m = spec.build(&mut rng);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let (features, logits) = m.forward_full(&x, false);
        assert_eq!(features.shape(), &[2, m.feature_dim()]);
        assert_eq!(logits.shape(), &[2, 10]);
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut rng = Rng::seed_from_u64(6);
        let mut m = build_res_mlp(2, 2, DepthTier::T11, &mut rng);
        // Two well-separated Gaussian blobs.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..32 {
            let c = i % 2;
            let offset = if c == 0 { -2.0 } else { 2.0 };
            xs.push(offset + rng.standard_normal() as f32 * 0.3);
            xs.push(offset + rng.standard_normal() as f32 * 0.3);
            ys.push(c);
        }
        let x = Tensor::from_vec(xs, &[32, 2]).unwrap();
        let ce = CrossEntropy::new();
        let mut opt = Adam::new(0.01);
        let initial = ce.loss(&m.forward_logits(&x, false), &ys);
        for _ in 0..60 {
            let logits = m.forward_logits(&x, true);
            let (_, grad) = ce.loss_and_grad(&logits, &ys);
            m.backward(&grad);
            opt.step(&mut m);
            m.zero_grad();
        }
        let trained = ce.loss(&m.forward_logits(&x, false), &ys);
        assert!(trained < initial * 0.5, "{initial} → {trained}");
    }

    #[test]
    fn backward_dual_moves_features_toward_target() {
        // Minimizing only the feature-MSE via backward_dual should pull the
        // embedding toward the target prototype.
        let mut rng = Rng::seed_from_u64(7);
        let mut m = build_mlp(&[2, 8], 2, &mut rng);
        let x = Tensor::full(&[1, 2], 1.0);
        let target = Tensor::full(&[1, 8], 0.5);
        let mse = Mse::new();
        let mut opt = Adam::new(0.05);
        let initial = {
            let f = m.forward_features(&x, false);
            mse.loss_and_grad(&f, &target).0
        };
        for _ in 0..100 {
            let (features, logits) = m.forward_full(&x, true);
            let (_, fgrad) = mse.loss_and_grad(&features, &target);
            let zero_logit_grad = Tensor::zeros(logits.shape());
            m.backward_dual(&zero_logit_grad, Some(&fgrad));
            opt.step(&mut m);
            m.zero_grad();
        }
        let trained = {
            let f = m.forward_features(&x, false);
            mse.loss_and_grad(&f, &target).0
        };
        // Dead ReLU units can pin a few coordinates, so require a solid but
        // not total reduction.
        assert!(trained < initial * 0.5, "{initial} → {trained}");
    }

    #[test]
    #[should_panic(expected = "head width mismatch")]
    fn mismatched_head_is_rejected() {
        let mut rng = Rng::seed_from_u64(8);
        let backbone =
            Sequential::new(vec![Box::new(Linear::new(4, 8, &mut rng)) as Box<dyn Layer>]);
        let head = Linear::new(6, 2, &mut rng);
        let _ = ClassifierModel::new(backbone, head, 8);
    }

    #[test]
    fn forward_features_is_bit_identical_to_forward_full() {
        // The copy-free feature path must return the exact bytes the
        // (features, logits) path sees, train and eval alike, and a
        // subsequent backward_dual must still work off the layer-held
        // activations.
        let mut rng = Rng::seed_from_u64(10);
        let mut m = build_res_mlp(6, 3, DepthTier::T11, &mut rng);
        let x = Tensor::rand_uniform(&[4, 6], -1.0, 1.0, &mut rng);
        for train in [false, true] {
            let via_features = m.forward_features(&x, train);
            let (via_full, logits) = m.forward_full(&x, train);
            assert_eq!(via_features.as_slice(), via_full.as_slice());
            if train {
                let grad = Tensor::full(logits.shape(), 0.1);
                m.backward_dual(&grad, None);
                m.zero_grad();
            }
        }
    }

    #[test]
    fn layer_impl_matches_forward_logits() {
        let mut rng = Rng::seed_from_u64(9);
        let mut m = build_mlp(&[3, 6], 4, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng);
        let via_layer = m.forward(&x, false);
        let via_method = m.forward_logits(&x, false);
        assert_eq!(via_layer, via_method);
    }
}
