//! First-order optimizers.
//!
//! Optimizers operate on any [`Layer`] through its stable parameter
//! visitation order, keeping their per-parameter state (momentum, Adam
//! moments) in positionally indexed buffers.

use crate::nn::Layer;
use crate::Tensor;

/// A gradient-based parameter update rule.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated in
    /// the model's parameters. Does not zero the gradients.
    fn step(&mut self, model: &mut dyn Layer);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Sets the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::Rng;
/// use fedpkd_tensor::nn::{Layer, Linear};
/// use fedpkd_tensor::optim::{Optimizer, Sgd};
/// use fedpkd_tensor::Tensor;
///
/// let mut rng = Rng::seed_from_u64(0);
/// let mut layer = Linear::new(2, 2, &mut rng);
/// let mut opt = Sgd::new(0.1).with_momentum(0.9);
/// layer.forward(&Tensor::zeros(&[1, 2]), true);
/// layer.backward(&Tensor::zeros(&[1, 2]));
/// opt.step(&mut layer);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Enables classical momentum.
    #[must_use]
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        self.momentum = momentum;
        self
    }

    /// Enables L2 weight decay.
    #[must_use]
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        model.visit_params_mut(&mut |p| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            debug_assert_eq!(v.shape(), p.value.shape(), "optimizer/model mismatch");
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            let vel = v.as_mut_slice();
            for ((w, &g), vel_i) in value.iter_mut().zip(grad).zip(vel.iter_mut()) {
                let g = g + wd * *w;
                if momentum > 0.0 {
                    *vel_i = momentum * *vel_i + g;
                    *w -= lr * *vel_i;
                } else {
                    *w -= lr * g;
                }
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// The Adam optimizer (Kingma & Ba), the paper's optimizer of choice
/// (Adam, η = 0.001).
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard hyperparameters
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Enables L2 weight decay (added to the gradient, as in classic Adam).
    #[must_use]
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = weight_decay;
        self
    }

    /// Number of update steps taken so far (the bias-correction counter).
    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// The first and second moment estimates, in parameter visitation order.
    ///
    /// Both slices are empty until the first [`step`](Optimizer::step) and
    /// afterwards hold one tensor per model parameter. Together with
    /// [`step_count`](Self::step_count) and the learning rate they are
    /// Adam's complete mutable state, so saving them and later feeding them
    /// to [`restore_state`](Self::restore_state) makes a resumed run take
    /// bit-identical update steps.
    pub fn moments(&self) -> (&[Tensor], &[Tensor]) {
        (&self.m, &self.v)
    }

    /// Restores the step count and moment buffers captured via
    /// [`step_count`](Self::step_count) and [`moments`](Self::moments).
    ///
    /// Hyperparameters (β₁, β₂, ε, weight decay) are configuration, not
    /// state; they come from the constructor of the instance being restored
    /// into.
    ///
    /// # Panics
    ///
    /// Panics if `m` and `v` differ in length or any pair differs in shape.
    pub fn restore_state(&mut self, t: u64, m: Vec<Tensor>, v: Vec<Tensor>) {
        assert_eq!(m.len(), v.len(), "moment buffers must pair up");
        for (m_i, v_i) in m.iter().zip(&v) {
            assert_eq!(m_i.shape(), v_i.shape(), "moment shapes must pair up");
        }
        self.t = t;
        self.m = m;
        self.v = v;
    }

    /// Consumes the optimizer, moving out its complete mutable state
    /// `(learning rate, step count, first moments, second moments)`.
    ///
    /// The move-out counterpart of [`moments`](Self::moments): parking a
    /// trained client into a copy-on-write slot wants the moment buffers by
    /// value without cloning them, and a fresh `Adam::new(lr)` plus
    /// [`restore_state`](Self::restore_state) reconstructs an equivalent
    /// optimizer exactly.
    pub fn into_state(self) -> (f32, u64, Vec<Tensor>, Vec<Tensor>) {
        (self.lr, self.t, self.m, self.v)
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        let (m_buf, v_buf) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params_mut(&mut |p| {
            if m_buf.len() <= idx {
                m_buf.push(Tensor::zeros(p.value.shape()));
                v_buf.push(Tensor::zeros(p.value.shape()));
            }
            let m = m_buf[idx].as_mut_slice();
            let v = v_buf[idx].as_mut_slice();
            let value = p.value.as_mut_slice();
            let grad = p.grad.as_slice();
            // Zip-driven so the (value, grad, m, v) walk compiles without
            // per-element bounds checks; the per-lane arithmetic is
            // unchanged, so updates are bit-identical to the indexed loop.
            for (((value, &grad), m), v) in value
                .iter_mut()
                .zip(grad)
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                let g = grad + wd * *value;
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let m_hat = *m / bias1;
                let v_hat = *v / bias2;
                *value -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

/// A step-decay learning-rate schedule: every `period` steps the learning
/// rate is multiplied by `factor`.
///
/// # Examples
///
/// ```
/// use fedpkd_tensor::optim::{Optimizer, Sgd, StepDecay};
///
/// let mut opt = Sgd::new(0.1);
/// let mut schedule = StepDecay::new(2, 0.5);
/// for _ in 0..4 {
///     schedule.step(&mut opt);
/// }
/// assert!((opt.learning_rate() - 0.025).abs() < 1e-7);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    period: usize,
    factor: f32,
    steps: usize,
}

impl StepDecay {
    /// Creates a schedule that decays the learning rate by `factor` every
    /// `period` steps.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `factor` is not in `(0, 1]`.
    pub fn new(period: usize, factor: f32) -> Self {
        assert!(period > 0, "period must be positive");
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        Self {
            period,
            factor,
            steps: 0,
        }
    }

    /// Advances the schedule by one step, decaying the optimizer's learning
    /// rate at period boundaries.
    pub fn step(&mut self, optimizer: &mut dyn Optimizer) {
        self.steps += 1;
        if self.steps.is_multiple_of(self.period) {
            optimizer.set_learning_rate(optimizer.learning_rate() * self.factor);
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::CrossEntropy;
    use crate::nn::{Linear, Relu, Sequential};
    use fedpkd_rng::Rng;

    /// Trains a tiny model on a separable toy problem and returns the final
    /// loss.
    fn train_toy(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut rng = Rng::seed_from_u64(1);
        let mut model = Sequential::new(vec![
            Box::new(Linear::new(2, 16, &mut rng)) as Box<dyn crate::nn::Layer>,
            Box::new(Relu::new()),
            Box::new(Linear::new(16, 2, &mut rng)),
        ]);
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]).unwrap();
        let y = vec![0usize, 0, 1, 1];
        let ce = CrossEntropy::new();
        let mut last = f32::INFINITY;
        for _ in 0..steps {
            let logits = model.forward(&x, true);
            let (loss, grad) = ce.loss_and_grad(&logits, &y);
            last = loss;
            model.backward(&grad);
            opt.step(&mut model);
            model.zero_grad();
        }
        last
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut opt = Sgd::new(0.5);
        let final_loss = train_toy(&mut opt, 200);
        assert!(final_loss < 0.1, "loss {final_loss}");
    }

    #[test]
    fn sgd_momentum_reduces_loss() {
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let final_loss = train_toy(&mut opt, 200);
        assert!(final_loss < 0.1, "loss {final_loss}");
    }

    #[test]
    fn adam_reduces_loss() {
        let mut opt = Adam::new(0.01);
        let final_loss = train_toy(&mut opt, 200);
        assert!(final_loss < 0.1, "loss {final_loss}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = Rng::seed_from_u64(2);
        let mut layer = Linear::new(4, 4, &mut rng);
        let before: f32 = {
            let mut norm = 0.0;
            layer.visit_params(&mut |p| norm += p.value.l2_norm());
            norm
        };
        // Zero gradients; only decay acts.
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        use crate::nn::Layer as _;
        layer.forward(&Tensor::zeros(&[1, 4]), true);
        layer.backward(&Tensor::zeros(&[1, 4]));
        layer.zero_grad();
        opt.step(&mut layer);
        let after: f32 = {
            let mut norm = 0.0;
            layer.visit_params(&mut |p| norm += p.value.l2_norm());
            norm
        };
        assert!(
            after < before,
            "decay must shrink weights: {after} !< {before}"
        );
    }

    #[test]
    fn sgd_single_step_matches_hand_computation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut layer = Linear::new(1, 1, &mut rng);
        use crate::nn::Layer as _;
        // Set w = 2, b = 0. Input 1, output grad 1 → dW = 1, db = 1.
        layer.visit_params_mut(&mut |p| {
            p.value.as_mut_slice()[0] = if p.value.shape() == [1usize, 1] {
                2.0
            } else {
                0.0
            };
        });
        let x = Tensor::full(&[1, 1], 1.0);
        layer.forward(&x, true);
        layer.backward(&Tensor::full(&[1, 1], 1.0));
        let mut opt = Sgd::new(0.1);
        opt.step(&mut layer);
        let mut vals = Vec::new();
        layer.visit_params(&mut |p| vals.push(p.value.as_slice()[0]));
        assert!((vals[0] - 1.9).abs() < 1e-6, "w {}", vals[0]);
        assert!((vals[1] + 0.1).abs() < 1e-6, "b {}", vals[1]);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        let mut adam = Adam::new(0.001);
        adam.set_learning_rate(0.002);
        assert_eq!(adam.learning_rate(), 0.002);
    }

    #[test]
    fn adam_restore_state_resumes_bit_identically() {
        let mut rng = Rng::seed_from_u64(4);
        let mut model = Sequential::new(vec![
            Box::new(Linear::new(2, 8, &mut rng)) as Box<dyn crate::nn::Layer>,
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 2, &mut rng)),
        ]);
        let x = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]).unwrap();
        let y = vec![0usize, 1];
        let ce = CrossEntropy::new();
        let mut opt = Adam::new(0.01);
        let run_steps = |model: &mut Sequential, opt: &mut Adam, n: usize| {
            for _ in 0..n {
                let logits = model.forward(&x, true);
                let (_, grad) = ce.loss_and_grad(&logits, &y);
                model.backward(&grad);
                opt.step(model);
                model.zero_grad();
            }
        };
        run_steps(&mut model, &mut opt, 5);
        // Snapshot the optimizer and model mid-run.
        let t = opt.step_count();
        assert_eq!(t, 5);
        let (m, v) = opt.moments();
        let (m, v) = (m.to_vec(), v.to_vec());
        let saved_params = crate::serialize::state_vector(&model);
        run_steps(&mut model, &mut opt, 5);
        let expected = crate::serialize::state_vector(&model);
        // Restore into a fresh optimizer and replay.
        let mut opt2 = Adam::new(0.01);
        opt2.restore_state(t, m, v);
        crate::serialize::load_state_vector(&mut model, &saved_params).unwrap();
        run_steps(&mut model, &mut opt2, 5);
        assert_eq!(crate::serialize::state_vector(&model), expected);
    }

    #[test]
    #[should_panic(expected = "moment buffers must pair up")]
    fn adam_restore_rejects_unpaired_moments() {
        let mut opt = Adam::new(0.01);
        opt.restore_state(1, vec![Tensor::zeros(&[2])], Vec::new());
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn rejects_momentum_of_one() {
        let _ = Sgd::new(0.1).with_momentum(1.0);
    }

    #[test]
    fn step_decay_halves_on_schedule() {
        let mut opt = Adam::new(0.008);
        let mut schedule = StepDecay::new(3, 0.5);
        for _ in 0..3 {
            schedule.step(&mut opt);
        }
        assert!((opt.learning_rate() - 0.004).abs() < 1e-9);
        for _ in 0..2 {
            schedule.step(&mut opt);
        }
        assert!((opt.learning_rate() - 0.004).abs() < 1e-9, "not yet");
        schedule.step(&mut opt);
        assert!((opt.learning_rate() - 0.002).abs() < 1e-9);
        assert_eq!(schedule.steps(), 6);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn step_decay_rejects_zero_period() {
        let _ = StepDecay::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "factor must be in")]
    fn step_decay_rejects_amplifying_factor() {
        let _ = StepDecay::new(2, 1.5);
    }
}
