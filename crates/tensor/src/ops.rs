//! Free functions on tensors: softmax families and related transforms.
//!
//! These operate row-wise on rank-2 tensors of logits `[batch, classes]` —
//! the shape in which all knowledge transfer in FedPKD happens.

use crate::kernels::{kernel_mode, KernelMode};
use crate::{parallel, Tensor};

/// Minimum rows per chunk before the softmax-family fast tier engages the
/// row-parallel path; below twice this, thread spawn cost outweighs the
/// per-row exp work. Rows are independent, so the split is bit-identical
/// to the sequential sweep at any worker count.
const PAR_MIN_SOFTMAX_ROWS: usize = 256;

/// One row of [`softmax`], in place — THE definition both tiers share.
#[inline]
fn softmax_row(row: &mut [f32], temperature: f32) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut total = 0.0f32;
    for v in row.iter_mut() {
        *v = ((*v - max) / temperature).exp();
        total += *v;
    }
    for v in row.iter_mut() {
        *v /= total;
    }
}

/// One row of [`log_softmax`], in place — THE definition both tiers share.
#[inline]
fn log_softmax_row(row: &mut [f32], temperature: f32) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = row
        .iter()
        .map(|&v| ((v - max) / temperature).exp())
        .sum::<f32>()
        .ln();
    for v in row.iter_mut() {
        *v = (*v - max) / temperature - log_sum;
    }
}

/// One row of [`row_variance`] — THE definition both tiers share.
#[inline]
fn variance_row(row: &[f32], cols: f32) -> f32 {
    let mean: f32 = row.iter().sum::<f32>() / cols;
    row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols
}

/// Whether the fast tier should run a row-wise op of `rows` rows on the
/// row-parallel path. Rows never share state, so this is purely a speed
/// decision — bits are identical either way.
#[inline]
fn row_parallel(rows: usize) -> bool {
    kernel_mode() == KernelMode::Fast && rows >= 2 * PAR_MIN_SOFTMAX_ROWS
}

/// Row-wise softmax with temperature.
///
/// Each row of `logits` is mapped to a probability distribution
/// `softmax(row / temperature)`. Temperature 1 is the plain softmax; higher
/// temperatures soften the distribution (the classic knowledge-distillation
/// trick of Hinton et al.).
///
/// Numerically stabilized by subtracting the row maximum.
///
/// # Panics
///
/// Panics if `temperature <= 0`.
///
/// # Examples
///
/// ```
/// use fedpkd_tensor::{ops, Tensor};
///
/// let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3])?;
/// let p = ops::softmax(&logits, 1.0);
/// assert!((p.as_slice().iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// # Ok::<(), fedpkd_tensor::TensorError>(())
/// ```
pub fn softmax(logits: &Tensor, temperature: f32) -> Tensor {
    assert!(temperature > 0.0, "temperature must be positive");
    let mut out = logits.clone();
    let cols = out.cols();
    if cols == 0 {
        return out;
    }
    let rows = out.rows();
    if row_parallel(rows) {
        parallel::for_each_row_chunk(
            out.as_mut_slice(),
            cols,
            PAR_MIN_SOFTMAX_ROWS,
            |_, chunk| {
                for row in chunk.chunks_mut(cols) {
                    softmax_row(row, temperature);
                }
            },
        );
    } else {
        for r in 0..rows {
            softmax_row(out.row_mut(r), temperature);
        }
    }
    out
}

/// Row-wise log-softmax with temperature (numerically stable).
///
/// # Panics
///
/// Panics if `temperature <= 0`.
pub fn log_softmax(logits: &Tensor, temperature: f32) -> Tensor {
    assert!(temperature > 0.0, "temperature must be positive");
    let mut out = logits.clone();
    let cols = out.cols();
    if cols == 0 {
        return out;
    }
    let rows = out.rows();
    if row_parallel(rows) {
        parallel::for_each_row_chunk(
            out.as_mut_slice(),
            cols,
            PAR_MIN_SOFTMAX_ROWS,
            |_, chunk| {
                for row in chunk.chunks_mut(cols) {
                    log_softmax_row(row, temperature);
                }
            },
        );
    } else {
        for r in 0..rows {
            log_softmax_row(out.row_mut(r), temperature);
        }
    }
    out
}

/// Shannon entropy (nats) of each row of a probability matrix.
///
/// Rows are assumed to be probability distributions; zero entries contribute
/// zero (the `0·ln 0 = 0` convention).
pub fn row_entropy(probs: &Tensor) -> Vec<f32> {
    (0..probs.rows())
        .map(|r| {
            probs
                .row(r)
                .iter()
                .filter(|&&p| p > 0.0)
                .map(|&p| -p * p.ln())
                .sum()
        })
        .collect()
}

/// Variance of each row.
///
/// FedPKD weighs a client's logits for a sample by the variance of that
/// logit vector (Eq. 7): confident predictions have one dominant logit and
/// hence high variance.
pub fn row_variance(x: &Tensor) -> Vec<f32> {
    let cols = x.cols().max(1) as f32;
    let rows = x.rows();
    if row_parallel(rows) {
        let mut out = vec![0.0f32; rows];
        parallel::for_each_row_chunk(&mut out, 1, PAR_MIN_SOFTMAX_ROWS, |row0, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = variance_row(x.row(row0 + i), cols);
            }
        });
        out
    } else {
        (0..rows).map(|r| variance_row(x.row(r), cols)).collect()
    }
}

/// Sharpens each row of a probability matrix: `p_i^(1/T) / Σ_j p_j^(1/T)`.
///
/// This is the entropy-reduction aggregation of DS-FL (Itahara et al.): with
/// `temperature < 1` the distribution becomes more peaked, reducing the
/// entropy of the aggregated soft labels.
///
/// # Panics
///
/// Panics if `temperature <= 0`.
pub fn sharpen(probs: &Tensor, temperature: f32) -> Tensor {
    assert!(temperature > 0.0, "temperature must be positive");
    let inv_t = 1.0 / temperature;
    let mut out = probs.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let mut total = 0.0f32;
        for v in row.iter_mut() {
            *v = v.max(0.0).powf(inv_t);
            total += *v;
        }
        if total > 0.0 {
            for v in row.iter_mut() {
                *v /= total;
            }
        }
    }
    out
}

/// Clips the global L2 norm of a gradient tensor to `max_norm`, in place.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(grad: &mut Tensor, max_norm: f32) -> f32 {
    let norm = grad.l2_norm();
    if norm > max_norm && norm > 0.0 {
        grad.scale_in_place(max_norm / norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorError;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(&[1., 2., 3., -1., 0., 1.], &[2, 3]);
        let p = softmax(&x, 1.0);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_preserves_argmax() {
        let x = t(&[0.1, 5.0, -2.0], &[1, 3]);
        let p = softmax(&x, 1.0);
        assert_eq!(p.argmax_rows(), vec![1]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = t(&[1000.0, 1001.0], &[1, 2]);
        let p = softmax(&x, 1.0);
        assert!(p.all_finite());
        assert!((p.as_slice()[0] + p.as_slice()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn high_temperature_softens() {
        let x = t(&[0.0, 4.0], &[1, 2]);
        let sharp = softmax(&x, 1.0);
        let soft = softmax(&x, 10.0);
        assert!(soft.as_slice()[0] > sharp.as_slice()[0]);
        assert!(soft.as_slice()[1] < sharp.as_slice()[1]);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = t(&[0.5, -1.0, 2.0, 0.0, 0.0, 0.0], &[2, 3]);
        let a = log_softmax(&x, 2.0);
        let b = softmax(&x, 2.0).map(f32::ln);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn softmax_rejects_zero_temperature() {
        softmax(&Tensor::zeros(&[1, 2]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_is_ln_k() {
        let p = t(&[0.25; 4], &[1, 4]);
        let h = row_entropy(&p);
        assert!((h[0] - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn entropy_of_onehot_is_zero() {
        let p = t(&[1.0, 0.0, 0.0], &[1, 3]);
        assert_eq!(row_entropy(&p), vec![0.0]);
    }

    #[test]
    fn variance_orders_confidence() {
        // A confident logit vector has higher variance than a flat one.
        let x = t(&[5.0, 0.0, 0.0, 1.0, 1.1, 0.9], &[2, 3]);
        let v = row_variance(&x);
        assert!(v[0] > v[1]);
    }

    #[test]
    fn variance_of_constant_row_is_zero() {
        let x = t(&[2.0, 2.0, 2.0], &[1, 3]);
        assert!(row_variance(&x)[0].abs() < 1e-9);
    }

    #[test]
    fn sharpen_reduces_entropy() {
        let p = t(&[0.5, 0.3, 0.2], &[1, 3]);
        let s = sharpen(&p, 0.5);
        let h_before = row_entropy(&p)[0];
        let h_after = row_entropy(&s)[0];
        assert!(h_after < h_before, "{h_after} !< {h_before}");
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sharpen_with_unit_temperature_is_identity() {
        let p = t(&[0.2, 0.8], &[1, 2]);
        let s = sharpen(&p, 1.0);
        for (a, b) in p.as_slice().iter().zip(s.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn clip_grad_norm_caps_and_reports() {
        let mut g = t(&[3.0, 4.0], &[2]);
        let pre = clip_grad_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.l2_norm() - 1.0).abs() < 1e-5);
        // Already small: untouched.
        let mut g2 = t(&[0.1, 0.1], &[2]);
        let n2 = g2.l2_norm();
        clip_grad_norm(&mut g2, 1.0);
        assert!((g2.l2_norm() - n2).abs() < 1e-7);
    }

    #[test]
    fn ops_propagate_through_result() -> Result<(), TensorError> {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2])?;
        let _ = softmax(&x, 1.0);
        Ok(())
    }
}
