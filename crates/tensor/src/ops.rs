//! Free functions on tensors: softmax families and related transforms.
//!
//! These operate row-wise on rank-2 tensors of logits `[batch, classes]` —
//! the shape in which all knowledge transfer in FedPKD happens.

use crate::Tensor;

/// Row-wise softmax with temperature.
///
/// Each row of `logits` is mapped to a probability distribution
/// `softmax(row / temperature)`. Temperature 1 is the plain softmax; higher
/// temperatures soften the distribution (the classic knowledge-distillation
/// trick of Hinton et al.).
///
/// Numerically stabilized by subtracting the row maximum.
///
/// # Panics
///
/// Panics if `temperature <= 0`.
///
/// # Examples
///
/// ```
/// use fedpkd_tensor::{ops, Tensor};
///
/// let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3])?;
/// let p = ops::softmax(&logits, 1.0);
/// assert!((p.as_slice().iter().sum::<f32>() - 1.0).abs() < 1e-6);
/// # Ok::<(), fedpkd_tensor::TensorError>(())
/// ```
pub fn softmax(logits: &Tensor, temperature: f32) -> Tensor {
    assert!(temperature > 0.0, "temperature must be positive");
    let mut out = logits.clone();
    let cols = out.cols();
    if cols == 0 {
        return out;
    }
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0f32;
        for v in row.iter_mut() {
            *v = ((*v - max) / temperature).exp();
            total += *v;
        }
        for v in row.iter_mut() {
            *v /= total;
        }
    }
    out
}

/// Row-wise log-softmax with temperature (numerically stable).
///
/// # Panics
///
/// Panics if `temperature <= 0`.
pub fn log_softmax(logits: &Tensor, temperature: f32) -> Tensor {
    assert!(temperature > 0.0, "temperature must be positive");
    let mut out = logits.clone();
    let cols = out.cols();
    if cols == 0 {
        return out;
    }
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum: f32 = row
            .iter()
            .map(|&v| ((v - max) / temperature).exp())
            .sum::<f32>()
            .ln();
        for v in row.iter_mut() {
            *v = (*v - max) / temperature - log_sum;
        }
    }
    out
}

/// Shannon entropy (nats) of each row of a probability matrix.
///
/// Rows are assumed to be probability distributions; zero entries contribute
/// zero (the `0·ln 0 = 0` convention).
pub fn row_entropy(probs: &Tensor) -> Vec<f32> {
    (0..probs.rows())
        .map(|r| {
            probs
                .row(r)
                .iter()
                .filter(|&&p| p > 0.0)
                .map(|&p| -p * p.ln())
                .sum()
        })
        .collect()
}

/// Variance of each row.
///
/// FedPKD weighs a client's logits for a sample by the variance of that
/// logit vector (Eq. 7): confident predictions have one dominant logit and
/// hence high variance.
pub fn row_variance(x: &Tensor) -> Vec<f32> {
    let cols = x.cols().max(1) as f32;
    (0..x.rows())
        .map(|r| {
            let row = x.row(r);
            let mean: f32 = row.iter().sum::<f32>() / cols;
            row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / cols
        })
        .collect()
}

/// Sharpens each row of a probability matrix: `p_i^(1/T) / Σ_j p_j^(1/T)`.
///
/// This is the entropy-reduction aggregation of DS-FL (Itahara et al.): with
/// `temperature < 1` the distribution becomes more peaked, reducing the
/// entropy of the aggregated soft labels.
///
/// # Panics
///
/// Panics if `temperature <= 0`.
pub fn sharpen(probs: &Tensor, temperature: f32) -> Tensor {
    assert!(temperature > 0.0, "temperature must be positive");
    let inv_t = 1.0 / temperature;
    let mut out = probs.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let mut total = 0.0f32;
        for v in row.iter_mut() {
            *v = v.max(0.0).powf(inv_t);
            total += *v;
        }
        if total > 0.0 {
            for v in row.iter_mut() {
                *v /= total;
            }
        }
    }
    out
}

/// Clips the global L2 norm of a gradient tensor to `max_norm`, in place.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(grad: &mut Tensor, max_norm: f32) -> f32 {
    let norm = grad.l2_norm();
    if norm > max_norm && norm > 0.0 {
        grad.scale_in_place(max_norm / norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorError;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = t(&[1., 2., 3., -1., 0., 1.], &[2, 3]);
        let p = softmax(&x, 1.0);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_preserves_argmax() {
        let x = t(&[0.1, 5.0, -2.0], &[1, 3]);
        let p = softmax(&x, 1.0);
        assert_eq!(p.argmax_rows(), vec![1]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = t(&[1000.0, 1001.0], &[1, 2]);
        let p = softmax(&x, 1.0);
        assert!(p.all_finite());
        assert!((p.as_slice()[0] + p.as_slice()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn high_temperature_softens() {
        let x = t(&[0.0, 4.0], &[1, 2]);
        let sharp = softmax(&x, 1.0);
        let soft = softmax(&x, 10.0);
        assert!(soft.as_slice()[0] > sharp.as_slice()[0]);
        assert!(soft.as_slice()[1] < sharp.as_slice()[1]);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = t(&[0.5, -1.0, 2.0, 0.0, 0.0, 0.0], &[2, 3]);
        let a = log_softmax(&x, 2.0);
        let b = softmax(&x, 2.0).map(f32::ln);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-5, "{u} vs {v}");
        }
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn softmax_rejects_zero_temperature() {
        softmax(&Tensor::zeros(&[1, 2]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_is_ln_k() {
        let p = t(&[0.25; 4], &[1, 4]);
        let h = row_entropy(&p);
        assert!((h[0] - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn entropy_of_onehot_is_zero() {
        let p = t(&[1.0, 0.0, 0.0], &[1, 3]);
        assert_eq!(row_entropy(&p), vec![0.0]);
    }

    #[test]
    fn variance_orders_confidence() {
        // A confident logit vector has higher variance than a flat one.
        let x = t(&[5.0, 0.0, 0.0, 1.0, 1.1, 0.9], &[2, 3]);
        let v = row_variance(&x);
        assert!(v[0] > v[1]);
    }

    #[test]
    fn variance_of_constant_row_is_zero() {
        let x = t(&[2.0, 2.0, 2.0], &[1, 3]);
        assert!(row_variance(&x)[0].abs() < 1e-9);
    }

    #[test]
    fn sharpen_reduces_entropy() {
        let p = t(&[0.5, 0.3, 0.2], &[1, 3]);
        let s = sharpen(&p, 0.5);
        let h_before = row_entropy(&p)[0];
        let h_after = row_entropy(&s)[0];
        assert!(h_after < h_before, "{h_after} !< {h_before}");
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sharpen_with_unit_temperature_is_identity() {
        let p = t(&[0.2, 0.8], &[1, 2]);
        let s = sharpen(&p, 1.0);
        for (a, b) in p.as_slice().iter().zip(s.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn clip_grad_norm_caps_and_reports() {
        let mut g = t(&[3.0, 4.0], &[2]);
        let pre = clip_grad_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.l2_norm() - 1.0).abs() < 1e-5);
        // Already small: untouched.
        let mut g2 = t(&[0.1, 0.1], &[2]);
        let n2 = g2.l2_norm();
        clip_grad_norm(&mut g2, 1.0);
        assert!((g2.l2_norm() - n2).abs() < 1e-7);
    }

    #[test]
    fn ops_propagate_through_result() -> Result<(), TensorError> {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2])?;
        let _ = softmax(&x, 1.0);
        Ok(())
    }
}
