//! A compact dense-tensor and neural-network library.
//!
//! The FedPKD paper trains ResNet-family models with PyTorch; no comparably
//! mature deep-learning stack exists in Rust, so this crate implements the
//! training substrate from scratch: row-major `f32` tensors, a layer
//! abstraction with explicit forward/backward passes, the losses the paper
//! uses (cross-entropy, KL-divergence distillation, mean-squared error for
//! prototype regularization), and SGD/Adam optimizers.
//!
//! The crate is deliberately scoped to what federated knowledge distillation
//! needs: mini-batch training of small classifiers, access to the
//! penultimate-layer feature embedding (for prototypes), logit extraction,
//! and byte-accurate parameter serialization (for communication accounting).
//!
//! # Examples
//!
//! Train a two-layer classifier on a toy problem:
//!
//! ```
//! use fedpkd_rng::Rng;
//! use fedpkd_tensor::nn::{Layer, Linear, Relu, Sequential};
//! use fedpkd_tensor::loss::CrossEntropy;
//! use fedpkd_tensor::optim::{Optimizer, Sgd};
//! use fedpkd_tensor::Tensor;
//!
//! let mut rng = Rng::seed_from_u64(0);
//! let mut model = Sequential::new(vec![
//!     Box::new(Linear::new(2, 16, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(16, 2, &mut rng)),
//! ]);
//! let x = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[2, 2]).unwrap();
//! let y = vec![0usize, 1];
//! let mut opt = Sgd::new(0.1);
//! for _ in 0..50 {
//!     let logits = model.forward(&x, true);
//!     let (loss, grad) = CrossEntropy::new().loss_and_grad(&logits, &y);
//!     assert!(loss.is_finite());
//!     model.backward(&grad);
//!     opt.step(&mut model);
//!     model.zero_grad();
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod tensor;

pub mod kernels;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod parallel;
pub mod plan;
pub mod serialize;

pub use error::TensorError;
#[allow(deprecated)]
pub use kernels::set_kernel_mode;
pub use kernels::{kernel_mode, KernelMode, KernelModeGuard};
pub use tensor::Tensor;
