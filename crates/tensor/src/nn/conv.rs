//! 2-D convolution via im2col.

use super::{Layer, Param};
use crate::Tensor;
use fedpkd_rng::Rng;

/// A 2-D convolution over `[n, c, h, w]` tensors.
///
/// Implemented with the classic im2col lowering: each input window is
/// unrolled into a column, turning the convolution into a matrix product
/// with the `[out_channels, in_channels·kh·kw]` weight matrix.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::Rng;
/// use fedpkd_tensor::nn::{Conv2d, Layer};
/// use fedpkd_tensor::Tensor;
///
/// let mut rng = Rng::seed_from_u64(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng); // 3×3 kernel, same-size output
/// let x = Tensor::zeros(&[2, 3, 8, 8]);
/// let y = conv.forward(&x, true);
/// assert_eq!(y.shape(), &[2, 8, 8, 8]);
/// ```
pub struct Conv2d {
    weight: Param, // [oc, ic*kh*kw]
    bias: Param,   // [oc]
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<Tensor>,
    cached_cols: Option<Vec<Tensor>>, // one [ic*k*k, oh*ow] matrix per sample
}

impl Conv2d {
    /// Creates a square-kernel convolution.
    ///
    /// # Panics
    ///
    /// Panics if any of `in_channels`, `out_channels`, `kernel`, or `stride`
    /// is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "Conv2d dimensions must be positive"
        );
        let fan_in = in_channels * kernel * kernel;
        let bound = (6.0 / fan_in as f32).sqrt();
        let weight = Tensor::rand_uniform(&[out_channels, fan_in], -bound, bound, rng);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            cached_input: None,
            cached_cols: None,
        }
    }

    /// Output spatial size for an input of spatial size `hw`.
    pub fn output_size(&self, hw: usize) -> usize {
        (hw + 2 * self.padding - self.kernel) / self.stride + 1
    }

    fn im2col(&self, x: &[f32], h: usize, w: usize, oh: usize, ow: usize) -> Tensor {
        let (c, k, s, p) = (self.in_channels, self.kernel, self.stride, self.padding);
        let mut col = Tensor::zeros(&[c * k * k, oh * ow]);
        let cols = col.as_mut_slice();
        let out_w = oh * ow;
        for ci in 0..c {
            let plane = &x[ci * h * w..(ci + 1) * h * w];
            for kh in 0..k {
                for kw in 0..k {
                    let row_base = (ci * k * k + kh * k + kw) * out_w;
                    for oy in 0..oh {
                        let iy = (oy * s + kh) as isize - p as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = (ox * s + kw) as isize - p as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            cols[row_base + oy * ow + ox] = plane[iy * w + ix as usize];
                        }
                    }
                }
            }
        }
        col
    }

    fn col2im(&self, dcol: &Tensor, h: usize, w: usize, oh: usize, ow: usize) -> Vec<f32> {
        let (c, k, s, p) = (self.in_channels, self.kernel, self.stride, self.padding);
        let mut dx = vec![0.0f32; c * h * w];
        let dc = dcol.as_slice();
        let out_w = oh * ow;
        for ci in 0..c {
            for kh in 0..k {
                for kw in 0..k {
                    let row_base = (ci * k * k + kh * k + kw) * out_w;
                    for oy in 0..oh {
                        let iy = (oy * s + kh) as isize - p as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..ow {
                            let ix = (ox * s + kw) as isize - p as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dx[ci * h * w + iy * w + ix as usize] += dc[row_base + oy * ow + ox];
                        }
                    }
                }
            }
        }
        dx
    }
}

impl std::fmt::Debug for Conv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conv2d")
            .field("in", &self.in_channels)
            .field("out", &self.out_channels)
            .field("kernel", &self.kernel)
            .field("stride", &self.stride)
            .field("padding", &self.padding)
            .finish()
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "Conv2d expects [n, c, h, w] input");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert_eq!(c, self.in_channels, "channel mismatch");
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        let mut out = Tensor::zeros(&[n, self.out_channels, oh, ow]);
        let mut cols = Vec::with_capacity(n);
        for s in 0..n {
            let col = self.im2col(input.row(s), h, w, oh, ow);
            let prod = self.weight.value.matmul(&col).expect("conv matmul");
            let bias = self.bias.value.as_slice();
            let dst = out.row_mut(s);
            for (oc, &b) in bias.iter().enumerate() {
                let src = prod.row(oc);
                let base = oc * oh * ow;
                for (i, &v) in src.iter().enumerate() {
                    dst[base + i] = v + b;
                }
            }
            cols.push(col);
        }
        self.cached_input = Some(input.clone());
        self.cached_cols = Some(cols);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let cols = self
            .cached_cols
            .as_ref()
            .expect("backward called before forward");
        let in_shape = input.shape();
        let (n, _c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let oh = self.output_size(h);
        let ow = self.output_size(w);
        let ckk = self.in_channels * self.kernel * self.kernel;

        let mut dx = Tensor::zeros(in_shape);
        debug_assert_eq!(cols.len(), n);
        for (s, col) in cols.iter().enumerate() {
            let g = Tensor::from_vec(grad_out.row(s).to_vec(), &[self.out_channels, oh * ow])
                .expect("grad reshape");
            // dW += g · colᵀ
            let col_t = col.transpose().expect("col transpose");
            let dw = g.matmul(&col_t).expect("dW matmul");
            self.weight.grad.axpy(1.0, &dw).expect("dW accumulate");
            // db += row sums of g
            let mut db = Tensor::zeros(&[self.out_channels]);
            for oc in 0..self.out_channels {
                db.as_mut_slice()[oc] = g.row(oc).iter().sum();
            }
            self.bias.grad.axpy(1.0, &db).expect("db accumulate");
            // dcol = Wᵀ · g, then scatter back to image space.
            let w_t = self.weight.value.transpose().expect("weight transpose");
            let dcol = w_t.matmul(&g).expect("dcol matmul");
            debug_assert_eq!(dcol.shape(), &[ckk, oh * ow]);
            let dxs = self.col2im(&dcol, h, w, oh, ow);
            dx.row_mut(s).copy_from_slice(&dxs);
        }
        dx
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;

    #[test]
    fn output_shape_same_padding() {
        let mut rng = Rng::seed_from_u64(1);
        let mut conv = Conv2d::new(2, 4, 3, 1, 1, &mut rng);
        let x = Tensor::zeros(&[1, 2, 5, 5]);
        assert_eq!(conv.forward(&x, true).shape(), &[1, 4, 5, 5]);
    }

    #[test]
    fn output_shape_stride_two() {
        let mut rng = Rng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 1, 3, 2, 1, &mut rng);
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        assert_eq!(conv.forward(&x, true).shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let mut rng = Rng::seed_from_u64(2);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.visit_params_mut(&mut |p| {
            let fill = if p.value.len() == 1 { 1.0 } else { 0.0 };
            for v in p.value.as_mut_slice() {
                *v = fill;
            }
        });
        // weight [1,1] = 1, bias [1] = 1 → fix bias back to 0.
        conv.visit_params_mut(&mut |p| {
            if p.value.shape() == [1usize] {
                p.value.as_mut_slice()[0] = 0.0;
            }
        });
        let x = Tensor::from_vec((0..9).map(|i| i as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let y = conv.forward(&x, true);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_3x3_convolution() {
        let mut rng = Rng::seed_from_u64(3);
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, &mut rng);
        // All-ones kernel, zero bias → each output is the window sum.
        conv.visit_params_mut(&mut |p| {
            let fill = if p.value.len() == 9 { 1.0 } else { 0.0 };
            for v in p.value.as_mut_slice() {
                *v = fill;
            }
        });
        let x = Tensor::full(&[1, 1, 4, 4], 1.0);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert!(y.as_slice().iter().all(|&v| (v - 9.0).abs() < 1e-6));
    }

    #[test]
    fn gradient_check_small() {
        let mut rng = Rng::seed_from_u64(4);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::rand_uniform(&[2, 2, 4, 4], -1.0, 1.0, &mut rng);
        gradcheck::check_input_grad(&mut conv, &x, 2e-2);
        gradcheck::check_param_grad(&mut conv, &x, 2e-2);
    }

    #[test]
    fn gradient_check_strided() {
        let mut rng = Rng::seed_from_u64(5);
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::rand_uniform(&[1, 1, 5, 5], -1.0, 1.0, &mut rng);
        gradcheck::check_input_grad(&mut conv, &x, 2e-2);
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::seed_from_u64(6);
        let conv = Conv2d::new(3, 16, 3, 1, 1, &mut rng);
        assert_eq!(conv.param_count(), 16 * 3 * 9 + 16);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn rejects_zero_kernel() {
        let mut rng = Rng::seed_from_u64(7);
        let _ = Conv2d::new(1, 1, 0, 1, 0, &mut rng);
    }
}
