//! Fully connected layer.

use super::{Layer, Param};
use crate::Tensor;
use fedpkd_rng::Rng;

/// A fully connected (affine) layer: `y = x W + b`.
///
/// Weights are stored `[in_features, out_features]` and initialized with
/// He-uniform scaling, which suits the ReLU family used throughout the
/// models.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::Rng;
/// use fedpkd_tensor::nn::{Layer, Linear};
/// use fedpkd_tensor::Tensor;
///
/// let mut rng = Rng::seed_from_u64(0);
/// let mut fc = Linear::new(8, 4, &mut rng);
/// let y = fc.forward(&Tensor::zeros(&[2, 8]), false);
/// assert_eq!(y.shape(), &[2, 4]);
/// assert_eq!(fc.param_count(), 8 * 4 + 4);
/// ```
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    fuse_relu: bool,
    cached_input: Option<Tensor>,
    cached_output: Option<Tensor>,
}

impl Linear {
    /// Creates a layer mapping `in_features` to `out_features`, with
    /// He-uniform initialized weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        assert!(in_features > 0 && out_features > 0, "zero-sized Linear");
        let bound = (6.0 / in_features as f32).sqrt();
        let weight = Tensor::rand_uniform(&[in_features, out_features], -bound, bound, rng);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            fuse_relu: false,
            cached_input: None,
            cached_output: None,
        }
    }

    /// Like [`Linear::new`], but with a ReLU fused into the forward pass —
    /// bit-identical to a `Linear` followed by a `Relu` layer (the bias and
    /// clamp are applied per element after the full reduction), without the
    /// extra output sweep and activation tensor. Draws the same weights
    /// from `rng` as [`Linear::new`], so swapping a `Linear + Relu` pair
    /// for a fused layer changes neither initialization nor results.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn fused_relu(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        let mut layer = Self::new(in_features, out_features, rng);
        layer.fuse_relu = true;
        layer
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl std::fmt::Debug for Linear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Linear")
            .field("in", &self.in_features)
            .field("out", &self.out_features)
            .field("fused_relu", &self.fuse_relu)
            .finish()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        debug_assert_eq!(input.cols(), self.in_features, "input width mismatch");
        let out = input
            .matmul_bias(&self.weight.value, &self.bias.value, self.fuse_relu)
            .expect("linear forward: shape mismatch");
        self.cached_input = Some(input.clone());
        if self.fuse_relu {
            // The output doubles as the ReLU mask: `relu(z) > 0 ⇔ z > 0`.
            self.cached_output = Some(out.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // With a fused ReLU, mask the incoming gradient exactly as a
        // standalone Relu layer would (its predicate `z > 0` on the
        // pre-activation equals `relu(z) > 0` on the cached output).
        let masked;
        let grad_out = if self.fuse_relu {
            let out = self
                .cached_output
                .as_ref()
                .expect("backward called before forward");
            masked = grad_out
                .zip_with(out, |g, y| if y > 0.0 { g } else { 0.0 })
                .expect("relu mask shape");
            &masked
        } else {
            grad_out
        };
        // dW = xᵀ · g ; db = column sums of g ; dx = g · Wᵀ. Both products
        // use the transposed kernels, so no per-batch transpose of the
        // input or the weight matrix is materialized.
        let dw = input.tr_matmul(grad_out).expect("dW shape");
        self.weight.grad.axpy(1.0, &dw).expect("dW accumulate");
        let db = grad_out.sum_rows();
        self.bias.grad.axpy(1.0, &db).expect("db accumulate");
        grad_out
            .matmul_transposed(&self.weight.value)
            .expect("dx shape")
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;

    #[test]
    fn forward_applies_affine_map() {
        let mut rng = Rng::seed_from_u64(1);
        let mut fc = Linear::new(2, 2, &mut rng);
        // Overwrite with a known transform: W = [[1,2],[3,4]], b = [10, 20].
        fc.visit_params_mut(&mut |p| {
            let vals: &[f32] = if p.value.len() == 4 {
                &[1., 2., 3., 4.]
            } else {
                &[10., 20.]
            };
            p.value.as_mut_slice().copy_from_slice(vals);
        });
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = fc.forward(&x, false);
        assert_eq!(y.as_slice(), &[1. + 3. + 10., 2. + 4. + 20.]);
    }

    #[test]
    fn gradient_check_input_and_params() {
        let mut rng = Rng::seed_from_u64(2);
        let mut fc = Linear::new(4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[5, 4], -1.0, 1.0, &mut rng);
        gradcheck::check_input_grad(&mut fc, &x, 1e-2);
        gradcheck::check_param_grad(&mut fc, &x, 1e-2);
    }

    #[test]
    fn init_scale_tracks_fan_in() {
        let mut rng = Rng::seed_from_u64(3);
        let wide = Linear::new(1000, 4, &mut rng);
        let mut max_abs = 0.0f32;
        wide.visit_params(&mut |p| {
            if p.value.len() > 4 {
                max_abs = p.value.as_slice().iter().fold(0.0, |m, v| m.max(v.abs()));
            }
        });
        assert!(max_abs <= (6.0f32 / 1000.0).sqrt() + 1e-6);
    }

    #[test]
    #[should_panic(expected = "zero-sized Linear")]
    fn zero_width_panics() {
        let mut rng = Rng::seed_from_u64(4);
        let _ = Linear::new(0, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = Rng::seed_from_u64(5);
        let mut fc = Linear::new(2, 2, &mut rng);
        fc.backward(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn fused_relu_matches_linear_then_relu_bitwise() {
        use crate::nn::Relu;
        // Same seed ⇒ identical weight draws for the fused and split stacks.
        let mut rng_a = Rng::seed_from_u64(7);
        let mut rng_b = Rng::seed_from_u64(7);
        let mut fused = Linear::fused_relu(6, 5, &mut rng_a);
        let mut plain = Linear::new(6, 5, &mut rng_b);
        let mut relu = Relu::new();

        let mut rng_x = Rng::seed_from_u64(8);
        let x = Tensor::rand_uniform(&[9, 6], -2.0, 2.0, &mut rng_x);
        let y_fused = fused.forward(&x, true);
        let y_plain = relu.forward(&plain.forward(&x, true), true);
        assert_eq!(y_fused.shape(), y_plain.shape());
        for (a, b) in y_fused.as_slice().iter().zip(y_plain.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let g = Tensor::rand_uniform(&[9, 5], -1.0, 1.0, &mut rng_x);
        let dx_fused = fused.backward(&g);
        let dx_plain = plain.backward(&relu.backward(&g));
        for (a, b) in dx_fused.as_slice().iter().zip(dx_plain.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut grads_fused = Vec::new();
        fused.visit_params(&mut |p| grads_fused.extend_from_slice(p.grad.as_slice()));
        let mut grads_plain = Vec::new();
        plain.visit_params(&mut |p| grads_plain.extend_from_slice(p.grad.as_slice()));
        assert_eq!(grads_fused.len(), grads_plain.len());
        for (a, b) in grads_fused.iter().zip(&grads_plain) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn gradient_check_fused_relu() {
        let mut rng = Rng::seed_from_u64(9);
        let mut fc = Linear::fused_relu(4, 3, &mut rng);
        // Push every pre-activation well above the ReLU kink so finite
        // differences never straddle it (the kink itself is covered by the
        // bitwise-equivalence test above).
        fc.visit_params_mut(&mut |p| {
            if p.value.len() == 3 {
                p.value.as_mut_slice().fill(5.0);
            }
        });
        let x = Tensor::rand_uniform(&[5, 4], 0.5, 1.5, &mut rng);
        gradcheck::check_input_grad(&mut fc, &x, 1e-2);
        gradcheck::check_param_grad(&mut fc, &x, 1e-2);
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut rng = Rng::seed_from_u64(6);
        let mut fc = Linear::new(2, 3, &mut rng);
        let x = Tensor::zeros(&[4, 2]);
        fc.forward(&x, true);
        let g = Tensor::full(&[4, 3], 1.0);
        fc.backward(&g);
        let mut bias_grad = Vec::new();
        fc.visit_params(&mut |p| {
            if p.value.len() == 3 {
                bias_grad = p.grad.as_slice().to_vec();
            }
        });
        assert_eq!(bias_grad, vec![4.0, 4.0, 4.0]);
    }
}
