//! Fully connected layer.

use super::{Layer, Param};
use crate::Tensor;
use fedpkd_rng::Rng;

/// A fully connected (affine) layer: `y = x W + b`.
///
/// Weights are stored `[in_features, out_features]` and initialized with
/// He-uniform scaling, which suits the ReLU family used throughout the
/// models.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::Rng;
/// use fedpkd_tensor::nn::{Layer, Linear};
/// use fedpkd_tensor::Tensor;
///
/// let mut rng = Rng::seed_from_u64(0);
/// let mut fc = Linear::new(8, 4, &mut rng);
/// let y = fc.forward(&Tensor::zeros(&[2, 8]), false);
/// assert_eq!(y.shape(), &[2, 4]);
/// assert_eq!(fc.param_count(), 8 * 4 + 4);
/// ```
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer mapping `in_features` to `out_features`, with
    /// He-uniform initialized weights and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        assert!(in_features > 0 && out_features > 0, "zero-sized Linear");
        let bound = (6.0 / in_features as f32).sqrt();
        let weight = Tensor::rand_uniform(&[in_features, out_features], -bound, bound, rng);
        Self {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl std::fmt::Debug for Linear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Linear")
            .field("in", &self.in_features)
            .field("out", &self.out_features)
            .finish()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        debug_assert_eq!(input.cols(), self.in_features, "input width mismatch");
        let mut out = input
            .matmul(&self.weight.value)
            .expect("linear forward: shape mismatch");
        let bias = self.bias.value.as_slice();
        for r in 0..out.rows() {
            for (o, &b) in out.row_mut(r).iter_mut().zip(bias) {
                *o += b;
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW = xᵀ · g ; db = column sums of g ; dx = g · Wᵀ
        let x_t = input.transpose().expect("cached input is rank 2");
        let dw = x_t.matmul(grad_out).expect("dW shape");
        self.weight.grad.axpy(1.0, &dw).expect("dW accumulate");
        let db = grad_out.sum_rows();
        self.bias.grad.axpy(1.0, &db).expect("db accumulate");
        let w_t = self.weight.value.transpose().expect("weight is rank 2");
        grad_out.matmul(&w_t).expect("dx shape")
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;

    #[test]
    fn forward_applies_affine_map() {
        let mut rng = Rng::seed_from_u64(1);
        let mut fc = Linear::new(2, 2, &mut rng);
        // Overwrite with a known transform: W = [[1,2],[3,4]], b = [10, 20].
        fc.visit_params_mut(&mut |p| {
            let vals: &[f32] = if p.value.len() == 4 {
                &[1., 2., 3., 4.]
            } else {
                &[10., 20.]
            };
            p.value.as_mut_slice().copy_from_slice(vals);
        });
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = fc.forward(&x, false);
        assert_eq!(y.as_slice(), &[1. + 3. + 10., 2. + 4. + 20.]);
    }

    #[test]
    fn gradient_check_input_and_params() {
        let mut rng = Rng::seed_from_u64(2);
        let mut fc = Linear::new(4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[5, 4], -1.0, 1.0, &mut rng);
        gradcheck::check_input_grad(&mut fc, &x, 1e-2);
        gradcheck::check_param_grad(&mut fc, &x, 1e-2);
    }

    #[test]
    fn init_scale_tracks_fan_in() {
        let mut rng = Rng::seed_from_u64(3);
        let wide = Linear::new(1000, 4, &mut rng);
        let mut max_abs = 0.0f32;
        wide.visit_params(&mut |p| {
            if p.value.len() > 4 {
                max_abs = p.value.as_slice().iter().fold(0.0, |m, v| m.max(v.abs()));
            }
        });
        assert!(max_abs <= (6.0f32 / 1000.0).sqrt() + 1e-6);
    }

    #[test]
    #[should_panic(expected = "zero-sized Linear")]
    fn zero_width_panics() {
        let mut rng = Rng::seed_from_u64(4);
        let _ = Linear::new(0, 3, &mut rng);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = Rng::seed_from_u64(5);
        let mut fc = Linear::new(2, 2, &mut rng);
        fc.backward(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut rng = Rng::seed_from_u64(6);
        let mut fc = Linear::new(2, 3, &mut rng);
        let x = Tensor::zeros(&[4, 2]);
        fc.forward(&x, true);
        let g = Tensor::full(&[4, 3], 1.0);
        fc.backward(&g);
        let mut bias_grad = Vec::new();
        fc.visit_params(&mut |p| {
            if p.value.len() == 3 {
                bias_grad = p.grad.as_slice().to_vec();
            }
        });
        assert_eq!(bias_grad, vec![4.0, 4.0, 4.0]);
    }
}
