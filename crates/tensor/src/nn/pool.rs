//! Pooling and reshaping layers for the convolutional path.

use super::{Layer, Param};
use crate::Tensor;

/// Average pooling over non-overlapping (or strided) square windows of a
/// `[n, c, h, w]` tensor.
#[derive(Debug)]
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    cached_in_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer with a square `kernel` and `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "AvgPool2d dimensions must be positive"
        );
        Self {
            kernel,
            stride,
            cached_in_shape: None,
        }
    }

    fn out_hw(&self, hw: usize) -> usize {
        (hw - self.kernel) / self.stride + 1
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "AvgPool2d expects [n, c, h, w]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = (self.out_hw(h), self.out_hw(w));
        let k2 = (self.kernel * self.kernel) as f32;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        for s in 0..n {
            let src = input.row(s);
            let dst = out.row_mut(s);
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                acc += src[ci * h * w + iy * w + ix];
                            }
                        }
                        dst[ci * oh * ow + oy * ow + ox] = acc / k2;
                    }
                }
            }
        }
        self.cached_in_shape = Some(shape.to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let in_shape = self
            .cached_in_shape
            .as_ref()
            .expect("backward called before forward");
        let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let (oh, ow) = (self.out_hw(h), self.out_hw(w));
        let k2 = (self.kernel * self.kernel) as f32;
        let mut dx = Tensor::zeros(in_shape);
        for s in 0..n {
            let g = grad_out.row(s);
            let d = dx.row_mut(s);
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let gv = g[ci * oh * ow + oy * ow + ox] / k2;
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                d[ci * h * w + iy * w + ix] += gv;
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// Global average pooling: `[n, c, h, w] → [n, c]`.
///
/// The standard final spatial reduction of ResNet-style networks; its output
/// is the feature embedding from which FedPKD prototypes are computed on the
/// convolutional path.
#[derive(Debug, Default)]
pub struct GlobalAvgPool2d {
    cached_in_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool2d {
    /// Creates a global average-pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for GlobalAvgPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "GlobalAvgPool2d expects [n, c, h, w]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let area = (h * w) as f32;
        let mut out = Tensor::zeros(&[n, c]);
        for s in 0..n {
            let src = input.row(s);
            let dst = out.row_mut(s);
            for (ci, d) in dst.iter_mut().enumerate() {
                *d = src[ci * h * w..(ci + 1) * h * w].iter().sum::<f32>() / area;
            }
        }
        self.cached_in_shape = Some(shape.to_vec());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let in_shape = self
            .cached_in_shape
            .as_ref()
            .expect("backward called before forward");
        let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let area = (h * w) as f32;
        let mut dx = Tensor::zeros(in_shape);
        for s in 0..n {
            let g = grad_out.row(s);
            let d = dx.row_mut(s);
            for ci in 0..c {
                let gv = g[ci] / area;
                for v in &mut d[ci * h * w..(ci + 1) * h * w] {
                    *v = gv;
                }
            }
        }
        dx
    }

    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// Flattens all trailing dimensions: `[n, d1, d2, …] → [n, d1·d2·…]`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_in_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flattening layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.cached_in_shape = Some(input.shape().to_vec());
        input
            .reshape(&[input.rows(), input.cols()])
            .expect("flatten preserves element count")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let in_shape = self
            .cached_in_shape
            .as_ref()
            .expect("backward called before forward");
        grad_out
            .reshape(in_shape)
            .expect("flatten backward preserves element count")
    }

    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;
    use fedpkd_rng::Rng;

    #[test]
    fn avg_pool_known_values() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![
                1., 2., 3., 4., 5., 6., 7., 8., 9., 10., 11., 12., 13., 14., 15., 16.,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_gradient_check() {
        let mut rng = Rng::seed_from_u64(1);
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::rand_uniform(&[2, 2, 4, 4], -1.0, 1.0, &mut rng);
        gradcheck::check_input_grad(&mut pool, &x, 1e-2);
    }

    #[test]
    fn global_avg_pool_means_channels() {
        let mut pool = GlobalAvgPool2d::new();
        let x = Tensor::from_vec(vec![1., 2., 3., 4., 10., 10., 10., 10.], &[1, 2, 2, 2]).unwrap();
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
    }

    #[test]
    fn global_avg_pool_gradient_check() {
        let mut rng = Rng::seed_from_u64(2);
        let mut pool = GlobalAvgPool2d::new();
        let x = Tensor::rand_uniform(&[2, 3, 3, 3], -1.0, 1.0, &mut rng);
        gradcheck::check_input_grad(&mut pool, &x, 1e-2);
    }

    #[test]
    fn flatten_round_trip() {
        let mut fl = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let y = fl.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let g = fl.backward(&Tensor::zeros(&[2, 48]));
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn avg_pool_rejects_zero_kernel() {
        let _ = AvgPool2d::new(0, 1);
    }

    #[test]
    fn pools_have_no_params() {
        assert_eq!(AvgPool2d::new(2, 2).param_count(), 0);
        assert_eq!(GlobalAvgPool2d::new().param_count(), 0);
        assert_eq!(Flatten::new().param_count(), 0);
    }
}
