//! Inverted dropout.

use super::{Layer, Param};
use crate::Tensor;
use fedpkd_rng::Rng;

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so evaluation mode
/// is a no-op.
///
/// The layer owns its generator (seeded at construction) so that training
/// remains deterministic under a fixed experiment seed.
pub struct Dropout {
    p: f32,
    rng: Rng,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Self {
            p,
            rng: Rng::seed_from_u64(seed),
            cached_mask: None,
        }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl std::fmt::Debug for Dropout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dropout").field("p", &self.p).finish()
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.cached_mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(input.shape());
        for m in mask.as_mut_slice() {
            *m = if self.rng.next_f32() < keep {
                scale
            } else {
                0.0
            };
        }
        let out = input.mul(&mask).expect("mask matches input shape");
        self.cached_mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.cached_mask {
            Some(mask) => grad_out.mul(mask).expect("dropout backward shape"),
            None => grad_out.clone(),
        }
    }

    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 1);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        assert_eq!(d.forward(&x, true), x);
    }

    #[test]
    fn expected_value_is_preserved() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::full(&[100, 100], 1.0);
        let y = d.forward(&x, true);
        // Inverted dropout keeps the expectation: mean should stay near 1.
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
    }

    #[test]
    fn survivors_are_scaled() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(&[1, 1000], 1.0);
        let y = d.forward(&x, true);
        for &v in y.as_slice() {
            assert!(v == 0.0 || (v - 2.0).abs() < 1e-6, "unexpected value {v}");
        }
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.5, 5);
        let x = Tensor::full(&[1, 64], 1.0);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::full(&[1, 64], 1.0));
        // Gradient must be zero exactly where the forward output was zeroed.
        for (o, gr) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*o == 0.0, *gr == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn rejects_probability_one() {
        let _ = Dropout::new(1.0, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut d = Dropout::new(0.5, 42);
            let x = Tensor::full(&[1, 32], 1.0);
            d.forward(&x, true).into_vec()
        };
        assert_eq!(run(), run());
    }
}
