//! Batch normalization for rank-2 activations.

use super::{Layer, Param};
use crate::Tensor;

/// Batch normalization over the feature dimension of `[batch, features]`
/// activations.
///
/// Training mode normalizes with batch statistics and maintains running
/// estimates; evaluation mode normalizes with the running estimates, so a
/// trained model is deterministic at inference time.
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    features: usize,
    // Caches for backward.
    cached_xhat: Option<Tensor>,
    cached_std_inv: Option<Vec<f32>>,
    cached_batch_stats: bool,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `features` channels with the standard
    /// momentum (0.1) and epsilon (1e-5).
    ///
    /// # Panics
    ///
    /// Panics if `features == 0`.
    pub fn new(features: usize) -> Self {
        assert!(features > 0, "zero-feature BatchNorm1d");
        Self {
            gamma: Param::new(Tensor::full(&[features], 1.0)),
            beta: Param::new(Tensor::zeros(&[features])),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            momentum: 0.1,
            eps: 1e-5,
            features,
            cached_xhat: None,
            cached_std_inv: None,
            cached_batch_stats: false,
        }
    }

    /// Number of normalized features.
    pub fn features(&self) -> usize {
        self.features
    }
}

impl std::fmt::Debug for BatchNorm1d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchNorm1d")
            .field("features", &self.features)
            .finish()
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let n = input.rows();
        let d = self.features;
        debug_assert_eq!(input.cols(), d, "feature width mismatch");
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();

        let use_batch_stats = train && n > 1;
        let (mean, var) = if use_batch_stats {
            let mut mean = vec![0.0f32; d];
            for r in 0..n {
                for (m, &v) in mean.iter_mut().zip(input.row(r)) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= n as f32;
            }
            let mut var = vec![0.0f32; d];
            for r in 0..n {
                for ((vv, &x), &m) in var.iter_mut().zip(input.row(r)).zip(&mean) {
                    *vv += (x - m) * (x - m);
                }
            }
            for v in &mut var {
                *v /= n as f32;
            }
            // Update running statistics.
            for ((rm, rv), (&m, &v)) in self
                .running_mean
                .iter_mut()
                .zip(self.running_var.iter_mut())
                .zip(mean.iter().zip(&var))
            {
                *rm = (1.0 - self.momentum) * *rm + self.momentum * m;
                *rv = (1.0 - self.momentum) * *rv + self.momentum * v;
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let std_inv: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = Tensor::zeros(&[n, d]);
        let mut out = Tensor::zeros(&[n, d]);
        // Zip-driven row sweeps (no per-element bounds checks); the
        // per-element arithmetic is unchanged, so outputs are bit-identical
        // to the indexed loops.
        for (xr, hr) in input
            .as_slice()
            .chunks_exact(d)
            .zip(xhat.as_mut_slice().chunks_exact_mut(d))
        {
            for (((h, &x), &m), &si) in hr.iter_mut().zip(xr).zip(&mean).zip(&std_inv) {
                *h = (x - m) * si;
            }
        }
        for (hr, or) in xhat
            .as_slice()
            .chunks_exact(d)
            .zip(out.as_mut_slice().chunks_exact_mut(d))
        {
            for (((o, &h), &g), &b) in or.iter_mut().zip(hr).zip(gamma).zip(beta) {
                *o = g * h + b;
            }
        }
        if train {
            self.cached_xhat = Some(xhat);
            self.cached_std_inv = Some(std_inv);
            self.cached_batch_stats = use_batch_stats;
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self
            .cached_xhat
            .as_ref()
            .expect("backward called before forward(train=true)");
        let std_inv = self
            .cached_std_inv
            .as_ref()
            .expect("backward called before forward(train=true)");
        let n = grad_out.rows();
        let d = self.features;
        let gamma = self.gamma.value.as_slice();

        // Parameter gradients.
        let mut dgamma = vec![0.0f32; d];
        let mut dbeta = vec![0.0f32; d];
        for (g, h) in grad_out
            .as_slice()
            .chunks_exact(d)
            .zip(xhat.as_slice().chunks_exact(d))
        {
            for ((dg, db), (&g, &h)) in dgamma.iter_mut().zip(dbeta.iter_mut()).zip(g.iter().zip(h))
            {
                *dg += g * h;
                *db += g;
            }
        }
        let dgamma_t = Tensor::from_vec(dgamma.clone(), &[d]).expect("dgamma shape");
        let dbeta_t = Tensor::from_vec(dbeta.clone(), &[d]).expect("dbeta shape");
        self.gamma
            .grad
            .axpy(1.0, &dgamma_t)
            .expect("accumulate dgamma");
        self.beta
            .grad
            .axpy(1.0, &dbeta_t)
            .expect("accumulate dbeta");

        // When the forward pass normalized with running statistics (a
        // single-row training batch), mean/var do not depend on the input
        // and the chain rule reduces to dx = dxhat · std_inv.
        if !self.cached_batch_stats {
            let mut dx = Tensor::zeros(&[n, d]);
            for (g, o) in grad_out
                .as_slice()
                .chunks_exact(d)
                .zip(dx.as_mut_slice().chunks_exact_mut(d))
            {
                for (((o, &g), &ga), &si) in o.iter_mut().zip(g).zip(gamma).zip(std_inv) {
                    *o = g * ga * si;
                }
            }
            return dx;
        }

        // Input gradient:
        // dx = gamma·std_inv/N · (N·dxhat − Σdxhat − xhat·Σ(dxhat·xhat))
        // where dxhat = grad_out · gamma.
        let mut sum_dxhat = vec![0.0f32; d];
        let mut sum_dxhat_xhat = vec![0.0f32; d];
        for (g, h) in grad_out
            .as_slice()
            .chunks_exact(d)
            .zip(xhat.as_slice().chunks_exact(d))
        {
            for (((sd, sdh), (&g, &h)), &ga) in sum_dxhat
                .iter_mut()
                .zip(sum_dxhat_xhat.iter_mut())
                .zip(g.iter().zip(h))
                .zip(gamma)
            {
                let dxh = g * ga;
                *sd += dxh;
                *sdh += dxh * h;
            }
        }
        let mut dx = Tensor::zeros(&[n, d]);
        for ((g, h), o) in grad_out
            .as_slice()
            .chunks_exact(d)
            .zip(xhat.as_slice().chunks_exact(d))
            .zip(dx.as_mut_slice().chunks_exact_mut(d))
        {
            for ((((o, (&g, &h)), &ga), &si), (&sd, &sdh)) in o
                .iter_mut()
                .zip(g.iter().zip(h))
                .zip(gamma)
                .zip(std_inv)
                .zip(sum_dxhat.iter().zip(&sum_dxhat_xhat))
            {
                let dxh = g * ga;
                *o = si / n as f32 * (n as f32 * dxh - sd - h * sdh);
            }
        }
        dx
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }

    fn visit_buffers(&self, f: &mut dyn FnMut(&[f32])) {
        f(&self.running_mean);
        f(&self.running_var);
    }

    fn visit_buffers_mut(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;
    use fedpkd_rng::Rng;

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 10.0, 3.0, 20.0, 5.0, 30.0], &[3, 2]).unwrap();
        let y = bn.forward(&x, true);
        // Each output column should have ~zero mean and ~unit variance.
        for j in 0..2 {
            let col: Vec<f32> = (0..3).map(|r| y.row(r)[j]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 3.0;
            let var: f32 = col.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let mut rng = Rng::seed_from_u64(1);
        // Feed many batches with mean 4, var 1 to converge the running stats.
        for _ in 0..200 {
            let x = Tensor::randn(&[32, 1], 1.0, &mut rng).map(|v| v + 4.0);
            bn.forward(&x, true);
        }
        // In eval mode, an input equal to the running mean maps near beta=0.
        let y = bn.forward(&Tensor::full(&[1, 1], 4.0), false);
        assert!(y.as_slice()[0].abs() < 0.2, "got {}", y.as_slice()[0]);
    }

    #[test]
    fn eval_is_deterministic() {
        let mut bn = BatchNorm1d::new(3);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let y1 = bn.forward(&x, false);
        let y2 = bn.forward(&x, false);
        assert_eq!(y1, y2);
    }

    #[test]
    fn gradient_check() {
        let mut rng = Rng::seed_from_u64(2);
        let mut bn = BatchNorm1d::new(3);
        let x = Tensor::rand_uniform(&[6, 3], -2.0, 2.0, &mut rng);
        gradcheck::check_input_grad(&mut bn, &x, 2e-2);
        gradcheck::check_param_grad(&mut bn, &x, 2e-2);
    }

    #[test]
    fn param_count_is_two_per_feature() {
        assert_eq!(BatchNorm1d::new(8).param_count(), 16);
    }

    #[test]
    #[should_panic(expected = "zero-feature")]
    fn rejects_zero_features() {
        let _ = BatchNorm1d::new(0);
    }

    #[test]
    fn single_row_training_batch_falls_back_to_running_stats() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        // Must not divide by zero / produce NaN.
        let y = bn.forward(&x, true);
        assert!(y.all_finite());
    }
}
