//! Element-wise activation layers.

use super::{Layer, Param};
use crate::Tensor;

/// Rectified linear unit: `max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    cached_input: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.cached_input = Some(input.clone());
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        grad_out
            .zip_with(input, |g, x| if x > 0.0 { g } else { 0.0 })
            .expect("relu backward shape")
    }

    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// Leaky rectified linear unit: `x` for positive inputs, `slope · x`
/// otherwise.
#[derive(Debug)]
pub struct LeakyRelu {
    slope: f32,
    cached_input: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-side slope.
    ///
    /// # Panics
    ///
    /// Panics if `slope` is negative or not finite.
    pub fn new(slope: f32) -> Self {
        assert!(slope.is_finite() && slope >= 0.0, "invalid slope");
        Self {
            slope,
            cached_input: None,
        }
    }
}

impl Layer for LeakyRelu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.cached_input = Some(input.clone());
        let s = self.slope;
        input.map(|x| if x > 0.0 { x } else { s * x })
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let s = self.slope;
        grad_out
            .zip_with(input, |g, x| if x > 0.0 { g } else { s * g })
            .expect("leaky relu backward shape")
    }

    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self
            .cached_output
            .as_ref()
            .expect("backward called before forward");
        grad_out
            .zip_with(out, |g, y| g * (1.0 - y * y))
            .expect("tanh backward shape")
    }

    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::gradcheck;
    use fedpkd_rng::Rng;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[1, 3]).unwrap();
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 3.0], &[1, 2]).unwrap();
        relu.forward(&x, true);
        let g = relu.backward(&Tensor::full(&[1, 2], 5.0));
        assert_eq!(g.as_slice(), &[0.0, 5.0]);
    }

    #[test]
    fn relu_gradcheck_away_from_kink() {
        let mut rng = Rng::seed_from_u64(1);
        // Keep inputs away from 0 where ReLU is non-differentiable.
        let x = Tensor::rand_uniform(&[3, 4], 0.5, 1.5, &mut rng);
        gradcheck::check_input_grad(&mut Relu::new(), &x, 1e-3);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let mut l = LeakyRelu::new(0.1);
        let x = Tensor::from_vec(vec![-2.0, 4.0], &[1, 2]).unwrap();
        let y = l.forward(&x, true);
        assert!((y.as_slice()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.as_slice()[1], 4.0);
        let g = l.backward(&Tensor::full(&[1, 2], 1.0));
        assert!((g.as_slice()[0] - 0.1).abs() < 1e-6);
        assert_eq!(g.as_slice()[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid slope")]
    fn leaky_relu_rejects_negative_slope() {
        let _ = LeakyRelu::new(-0.5);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut rng = Rng::seed_from_u64(2);
        let x = Tensor::rand_uniform(&[3, 4], -1.0, 1.0, &mut rng);
        gradcheck::check_input_grad(&mut Tanh::new(), &x, 1e-2);
    }

    #[test]
    fn tanh_saturates() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![100.0, -100.0, 0.0], &[1, 3]).unwrap();
        let y = t.forward(&x, true);
        assert!((y.as_slice()[0] - 1.0).abs() < 1e-6);
        assert!((y.as_slice()[1] + 1.0).abs() < 1e-6);
        assert_eq!(y.as_slice()[2], 0.0);
    }

    #[test]
    fn activations_have_no_params() {
        assert_eq!(Relu::new().param_count(), 0);
        assert_eq!(LeakyRelu::new(0.1).param_count(), 0);
        assert_eq!(Tanh::new().param_count(), 0);
    }
}
