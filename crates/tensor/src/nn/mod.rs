//! Neural-network layers with explicit forward/backward passes.
//!
//! The [`Layer`] trait is the backbone of the training stack: each layer
//! caches what it needs during [`Layer::forward`] and produces input
//! gradients (while accumulating parameter gradients) in
//! [`Layer::backward`]. Containers ([`Sequential`], [`Residual`]) compose
//! layers into networks.

mod activations;
mod batchnorm;
mod conv;
mod dropout;
mod linear;
mod pool;

pub use activations::{LeakyRelu, Relu, Tanh};
pub use batchnorm::BatchNorm1d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use pool::{AvgPool2d, Flatten, GlobalAvgPool2d};

use crate::Tensor;

/// A trainable parameter: a value tensor plus its accumulated gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.shape());
    }
}

/// A differentiable network layer.
///
/// The contract: call [`forward`](Layer::forward) on a batch, then
/// [`backward`](Layer::backward) with the gradient of the loss with respect
/// to the forward output. `backward` accumulates gradients into the layer's
/// [`Param`]s (so multiple backward passes sum) and returns the gradient with
/// respect to the forward input. Call [`zero_grad`](Layer::zero_grad)
/// between optimizer steps.
///
/// Layers are `Send` so simulated clients can train on worker threads.
pub trait Layer: Send {
    /// Runs the layer on `input`. `train` selects training-time behaviour
    /// (dropout active, batch-norm batch statistics).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backpropagates `grad_out` (gradient w.r.t. the last forward output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the last forward input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward` or with a
    /// gradient whose shape does not match the last forward output.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter mutably, in a stable order.
    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every trainable parameter immutably, in the same stable order
    /// as [`visit_params_mut`](Layer::visit_params_mut).
    fn visit_params(&self, f: &mut dyn FnMut(&Param));

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }

    /// Visits every non-trainable state buffer immutably, in a stable
    /// order (e.g. batch-norm running statistics). Buffers are part of a
    /// model's transferable state — parameter-averaging FL algorithms must
    /// ship and aggregate them alongside the parameters — but are not
    /// touched by optimizers.
    fn visit_buffers(&self, _f: &mut dyn FnMut(&[f32])) {}

    /// Visits every non-trainable state buffer mutably, in the same stable
    /// order as [`visit_buffers`](Layer::visit_buffers).
    fn visit_buffers_mut(&mut self, _f: &mut dyn FnMut(&mut [f32])) {}

    /// Total number of scalars in non-trainable state buffers.
    fn buffer_count(&self) -> usize {
        let mut n = 0;
        self.visit_buffers(&mut |b| n += b.len());
        n
    }

    /// Zeroes all accumulated gradients.
    fn zero_grad(&mut self) {
        self.visit_params_mut(&mut |p| p.zero_grad());
    }
}

/// A layer that passes its input through unchanged.
///
/// Useful as the skip path of a [`Residual`] block when no projection is
/// needed.
#[derive(Debug, Default)]
pub struct Identity;

impl Identity {
    /// Creates an identity layer.
    pub fn new() -> Self {
        Self
    }
}

impl Layer for Identity {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        input.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// A container that applies layers in order.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::Rng;
/// use fedpkd_tensor::nn::{Layer, Linear, Relu, Sequential};
/// use fedpkd_tensor::Tensor;
///
/// let mut rng = Rng::seed_from_u64(1);
/// let mut net = Sequential::new(vec![
///     Box::new(Linear::new(4, 8, &mut rng)),
///     Box::new(Relu::new()),
///     Box::new(Linear::new(8, 3, &mut rng)),
/// ]);
/// let x = Tensor::zeros(&[2, 4]);
/// let y = net.forward(&x, false);
/// assert_eq!(y.shape(), &[2, 3]);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates a sequential container from an ordered list of layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Creates an empty container (the identity function).
    pub fn empty() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.len())
            .field("params", &self.param_count())
            .finish()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for layer in &self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_buffers(&self, f: &mut dyn FnMut(&[f32])) {
        for layer in &self.layers {
            layer.visit_buffers(f);
        }
    }

    fn visit_buffers_mut(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_buffers_mut(f);
        }
    }
}

/// A residual block: `output = body(x) + skip(x)`.
///
/// When the body preserves the feature width the skip path is the identity;
/// otherwise pass a projection layer (typically [`Linear`] or 1×1
/// [`Conv2d`]).
pub struct Residual {
    body: Box<dyn Layer>,
    skip: Box<dyn Layer>,
}

impl Residual {
    /// Creates a residual block with an identity skip connection.
    pub fn new(body: Box<dyn Layer>) -> Self {
        Self {
            body,
            skip: Box::new(Identity::new()),
        }
    }

    /// Creates a residual block with an explicit projection on the skip path.
    pub fn with_projection(body: Box<dyn Layer>, skip: Box<dyn Layer>) -> Self {
        Self { body, skip }
    }
}

impl std::fmt::Debug for Residual {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Residual")
            .field("params", &self.param_count())
            .finish()
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let main = self.body.forward(input, train);
        let shortcut = self.skip.forward(input, train);
        main.add(&shortcut)
            .expect("residual body and skip must produce equal shapes")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_body = self.body.backward(grad_out);
        let g_skip = self.skip.backward(grad_out);
        g_body
            .add(&g_skip)
            .expect("residual input gradients must agree in shape")
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.body.visit_params_mut(f);
        self.skip.visit_params_mut(f);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.body.visit_params(f);
        self.skip.visit_params(f);
    }

    fn visit_buffers(&self, f: &mut dyn FnMut(&[f32])) {
        self.body.visit_buffers(f);
        self.skip.visit_buffers(f);
    }

    fn visit_buffers_mut(&mut self, f: &mut dyn FnMut(&mut [f32])) {
        self.body.visit_buffers_mut(f);
        self.skip.visit_buffers_mut(f);
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by the layer tests.

    use super::*;

    /// Checks `d loss / d input` of `layer` at `input` against central finite
    /// differences, where the loss is `sum(forward(input) * weights)` for a
    /// fixed random weighting (so the output gradient is `weights`).
    pub fn check_input_grad(layer: &mut dyn Layer, input: &Tensor, tol: f32) {
        let mut rng = fedpkd_rng::Rng::seed_from_u64(0xFEED);
        let out = layer.forward(input, true);
        let weights = Tensor::rand_uniform(out.shape(), -1.0, 1.0, &mut rng);
        let analytic = layer.backward(&weights);

        let eps = 1e-2f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let f_plus: f32 = layer.forward(&plus, true).mul(&weights).unwrap().sum();
            let f_minus: f32 = layer.forward(&minus, true).mul(&weights).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let got = analytic.as_slice()[i];
            assert!(
                (numeric - got).abs() < tol * (1.0 + numeric.abs()),
                "input grad {i}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    /// Checks `d loss / d params` against central finite differences with the
    /// same weighted-sum loss.
    pub fn check_param_grad(layer: &mut dyn Layer, input: &Tensor, tol: f32) {
        let mut rng = fedpkd_rng::Rng::seed_from_u64(0xBEEF);
        let out = layer.forward(input, true);
        let weights = Tensor::rand_uniform(out.shape(), -1.0, 1.0, &mut rng);
        layer.zero_grad();
        layer.forward(input, true);
        layer.backward(&weights);

        let mut analytic: Vec<f32> = Vec::new();
        layer.visit_params(&mut |p| analytic.extend_from_slice(p.grad.as_slice()));

        let eps = 1e-2f32;
        let n_params = {
            let mut n = 0;
            layer.visit_params(&mut |p| n += p.value.len());
            n
        };
        assert_eq!(analytic.len(), n_params);
        for (global_i, &got) in analytic.iter().enumerate() {
            // Perturb parameter `global_i` by +eps / -eps via the visitor.
            let perturb = |layer: &mut dyn Layer, delta: f32| {
                let mut seen = 0usize;
                layer.visit_params_mut(&mut |p| {
                    let len = p.value.len();
                    if global_i >= seen && global_i < seen + len {
                        p.value.as_mut_slice()[global_i - seen] += delta;
                    }
                    seen += len;
                });
            };
            perturb(layer, eps);
            let f_plus: f32 = layer.forward(input, true).mul(&weights).unwrap().sum();
            perturb(layer, -2.0 * eps);
            let f_minus: f32 = layer.forward(input, true).mul(&weights).unwrap().sum();
            perturb(layer, eps);
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - got).abs() < tol * (1.0 + numeric.abs()),
                "param grad {global_i}: numeric {numeric} vs analytic {got}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedpkd_rng::Rng;

    #[test]
    fn identity_round_trip() {
        let mut id = Identity::new();
        let x = Tensor::from_vec(vec![1.0, -2.0], &[1, 2]).unwrap();
        assert_eq!(id.forward(&x, true), x);
        assert_eq!(id.backward(&x), x);
        assert_eq!(id.param_count(), 0);
    }

    #[test]
    fn sequential_composes_shapes() {
        let mut rng = Rng::seed_from_u64(2);
        let mut net = Sequential::new(vec![
            Box::new(Linear::new(3, 5, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(5, 2, &mut rng)),
        ]);
        let x = Tensor::zeros(&[4, 3]);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[4, 2]);
        let g = net.backward(&Tensor::zeros(&[4, 2]));
        assert_eq!(g.shape(), &[4, 3]);
    }

    #[test]
    fn sequential_param_count_sums_children() {
        let mut rng = Rng::seed_from_u64(2);
        let net = Sequential::new(vec![
            Box::new(Linear::new(3, 5, &mut rng)), // 3*5 + 5 = 20
            Box::new(Linear::new(5, 2, &mut rng)), // 5*2 + 2 = 12
        ]);
        assert_eq!(net.param_count(), 32);
    }

    #[test]
    fn sequential_push_and_len() {
        let mut rng = Rng::seed_from_u64(2);
        let mut net = Sequential::empty();
        assert!(net.is_empty());
        net.push(Box::new(Linear::new(2, 2, &mut rng)));
        assert_eq!(net.len(), 1);
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut net = Sequential::empty();
        let x = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]).unwrap();
        assert_eq!(net.forward(&x, true), x);
    }

    #[test]
    fn residual_identity_adds_input() {
        // body = 0-weight linear → output should equal input via the skip.
        let mut rng = Rng::seed_from_u64(3);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.visit_params_mut(&mut |p| {
            for v in p.value.as_mut_slice() {
                *v = 0.0;
            }
        });
        let mut block = Residual::new(Box::new(lin));
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let y = block.forward(&x, true);
        assert_eq!(y, x);
    }

    #[test]
    fn residual_gradient_check() {
        let mut rng = Rng::seed_from_u64(4);
        let body = Sequential::new(vec![
            Box::new(Linear::new(3, 3, &mut rng)),
            Box::new(Tanh::new()),
        ]);
        let mut block = Residual::new(Box::new(body));
        let x = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng);
        gradcheck::check_input_grad(&mut block, &x, 1e-2);
        gradcheck::check_param_grad(&mut block, &x, 1e-2);
    }

    #[test]
    fn residual_with_projection_changes_width() {
        let mut rng = Rng::seed_from_u64(5);
        let body = Sequential::new(vec![Box::new(Linear::new(3, 6, &mut rng)) as Box<dyn Layer>]);
        let proj = Linear::new(3, 6, &mut rng);
        let mut block = Residual::with_projection(Box::new(body), Box::new(proj));
        let x = Tensor::zeros(&[2, 3]);
        assert_eq!(block.forward(&x, true).shape(), &[2, 6]);
        gradcheck::check_input_grad(
            &mut block,
            &Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng),
            1e-2,
        );
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut rng = Rng::seed_from_u64(6);
        let mut net =
            Sequential::new(vec![Box::new(Linear::new(2, 2, &mut rng)) as Box<dyn Layer>]);
        let x = Tensor::full(&[1, 2], 1.0);
        net.forward(&x, true);
        net.backward(&Tensor::full(&[1, 2], 1.0));
        let mut nonzero = false;
        net.visit_params(&mut |p| nonzero |= p.grad.as_slice().iter().any(|&g| g != 0.0));
        assert!(nonzero);
        net.zero_grad();
        net.visit_params(&mut |p| assert!(p.grad.as_slice().iter().all(|&g| g == 0.0)));
    }

    #[test]
    fn backward_accumulates_across_calls() {
        let mut rng = Rng::seed_from_u64(7);
        let mut net = Linear::new(2, 1, &mut rng);
        let x = Tensor::full(&[1, 2], 1.0);
        let g = Tensor::full(&[1, 1], 1.0);
        net.forward(&x, true);
        net.backward(&g);
        let mut first = Vec::new();
        net.visit_params(&mut |p| first.extend_from_slice(p.grad.as_slice()));
        net.forward(&x, true);
        net.backward(&g);
        let mut second = Vec::new();
        net.visit_params(&mut |p| second.extend_from_slice(p.grad.as_slice()));
        for (a, b) in first.iter().zip(&second) {
            assert!((2.0 * a - b).abs() < 1e-5, "grads must accumulate");
        }
    }
}
