//! Error types for tensor operations.

/// Errors produced by fallible tensor constructors and operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The element count implied by the shape does not match the data length.
    ShapeDataMismatch {
        /// Number of elements the shape implies.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
    /// The operation requires a different dimensionality.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor given.
        actual: usize,
    },
    /// Inner dimensions are incompatible for matrix multiplication.
    MatmulDimMismatch {
        /// Columns of the left matrix.
        left_cols: usize,
        /// Rows of the right matrix.
        right_rows: usize,
    },
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The bound it violated.
        bound: usize,
    },
    /// A parameter blob had the wrong length when loading model weights.
    ParamLengthMismatch {
        /// Number of parameters the model holds.
        expected: usize,
        /// Number of values provided.
        actual: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ShapeDataMismatch { expected, actual } => {
                write!(
                    f,
                    "shape implies {expected} elements but {actual} were given"
                )
            }
            Self::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left:?} vs {right:?}")
            }
            Self::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, got rank {actual}")
            }
            Self::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => write!(
                f,
                "matmul inner dimensions differ: {left_cols} vs {right_rows}"
            ),
            Self::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for size {bound}")
            }
            Self::ParamLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "model has {expected} parameters but {actual} values were given"
                )
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<TensorError> = vec![
            TensorError::ShapeDataMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                left: vec![2, 2],
                right: vec![3],
            },
            TensorError::RankMismatch {
                expected: 2,
                actual: 1,
            },
            TensorError::MatmulDimMismatch {
                left_cols: 3,
                right_rows: 4,
            },
            TensorError::IndexOutOfBounds { index: 9, bound: 3 },
            TensorError::ParamLengthMismatch {
                expected: 10,
                actual: 2,
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
