//! Execution-plan layer: grouped scheduling for batched multi-client work.
//!
//! The work-stealing pool in [`crate::parallel`] seeds each worker's deque
//! with a contiguous chunk of items in input order. For a heterogeneous
//! client fleet that order interleaves model architectures arbitrarily, so
//! a worker draining its queue alternates between weight templates and
//! scratch-buffer sizes on every task — each client's forward/backward
//! re-faults a different template into cache and regrows the thread-local
//! repack arenas.
//!
//! This module plans the *seeding order* instead: [`schedule`] permutes the
//! queue so same-group items (clients sharing a `ModelSpec` template) land
//! contiguously on the same worker. Consecutive tasks then run batched
//! per-layer GEMMs against the *same* resident template with same-sized
//! pooled scratch arenas — the fleet-scale form of batching heterogeneous
//! client work.
//!
//! # Why batching commutes with commit order
//!
//! Determinism does not depend on the schedule. Every task is a pure
//! function of `(index, item)` (clients never share mutable state), and
//! [`crate::parallel::dispatch_stealing_scheduled`] commits results through
//! a reorder buffer in strictly ascending *original* index whatever order
//! workers executed them in. Permuting the seeding order therefore changes
//! only *when* each result becomes available, never its value or the order
//! server-side folds observe it — so any schedule, any worker count, and
//! any steal interleaving replay bit-identically. The perf binary's gate
//! checks exactly this: grouped vs sequential schedules must produce
//! identical run histories for all algorithms.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which seeding schedule the execution-plan dispatchers build.
///
/// Both modes produce bit-identical results (see the module docs); the
/// switch exists so benchmarks and the bit-identity gate can compare the
/// schedules on identical workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Seed worker queues in input order (the pre-plan behavior).
    Sequential,
    /// Group same-key items contiguously per worker (the default).
    Grouped,
}

/// Sentinel: the mode has not been resolved from the environment yet.
const MODE_UNSET: u8 = u8::MAX;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_to_raw(mode: PlanMode) -> u8 {
    match mode {
        PlanMode::Sequential => 0,
        PlanMode::Grouped => 1,
    }
}

fn raw_to_mode(raw: u8) -> PlanMode {
    if raw == 0 {
        PlanMode::Sequential
    } else {
        PlanMode::Grouped
    }
}

/// The process-wide default plan, read once from `FEDPKD_PLAN`
/// (`sequential` selects input-order seeding; anything else — including
/// the variable being unset — selects grouped seeding).
fn env_default() -> u8 {
    match std::env::var("FEDPKD_PLAN") {
        Ok(v) if v.eq_ignore_ascii_case("sequential") => 0,
        _ => 1,
    }
}

impl PlanMode {
    /// Selects this plan mode for the lifetime of the returned guard and
    /// restores the previous mode when the guard drops (including on
    /// panic-unwind). The switch is process-wide, mirroring
    /// [`crate::KernelMode::scoped`] — overlapping guards on different
    /// threads share it, which is safe (modes are bit-identical) but makes
    /// concurrent timing comparisons meaningless.
    #[must_use = "the plan mode reverts as soon as the guard drops"]
    pub fn scoped(self) -> PlanModeGuard {
        let prev = plan_mode();
        MODE.store(mode_to_raw(self), Ordering::Relaxed);
        PlanModeGuard { prev }
    }
}

/// RAII guard from [`PlanMode::scoped`]: restores the previously selected
/// plan mode on drop.
#[derive(Debug)]
pub struct PlanModeGuard {
    prev: PlanMode,
}

impl Drop for PlanModeGuard {
    fn drop(&mut self) {
        MODE.store(mode_to_raw(self.prev), Ordering::Relaxed);
    }
}

/// The currently selected plan mode. On first call this resolves the
/// default from the `FEDPKD_PLAN` environment variable (`sequential` →
/// [`PlanMode::Sequential`], anything else → [`PlanMode::Grouped`]);
/// afterwards it reflects the innermost live [`PlanMode::scoped`] guard.
pub fn plan_mode() -> PlanMode {
    let raw = MODE.load(Ordering::Relaxed);
    if raw != MODE_UNSET {
        return raw_to_mode(raw);
    }
    let resolved = env_default();
    match MODE.compare_exchange(MODE_UNSET, resolved, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => raw_to_mode(resolved),
        Err(current) => raw_to_mode(current),
    }
}

/// Builds the grouped seeding schedule for items with the given group
/// keys: a permutation of `0..keys.len()` listing the items of each group
/// contiguously, groups ordered by first appearance and items within a
/// group in ascending index order. Fully deterministic — no hashing, no
/// dependence on key *values* beyond equality.
pub fn grouped_schedule(keys: &[u64]) -> Vec<usize> {
    let mut group_order: Vec<u64> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        match group_order.iter().position(|&k| k == key) {
            Some(g) => members[g].push(i),
            None => {
                group_order.push(key);
                members.push(vec![i]);
            }
        }
    }
    members.into_iter().flatten().collect()
}

/// The seeding schedule for the current [`plan_mode`]: grouped by `keys`
/// under [`PlanMode::Grouped`], the identity permutation under
/// [`PlanMode::Sequential`].
pub fn schedule(keys: &[u64]) -> Vec<usize> {
    match plan_mode() {
        PlanMode::Sequential => (0..keys.len()).collect(),
        PlanMode::Grouped => grouped_schedule(keys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_schedule_is_a_permutation_that_groups_keys() {
        let keys = [3u64, 1, 3, 2, 1, 3, 2];
        let sched = grouped_schedule(&keys);
        // Groups in first-appearance order, members in index order.
        assert_eq!(sched, vec![0, 2, 5, 1, 4, 3, 6]);
        let mut sorted = sched.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..keys.len()).collect::<Vec<_>>());
    }

    #[test]
    fn grouped_schedule_handles_degenerate_inputs() {
        assert!(grouped_schedule(&[]).is_empty());
        assert_eq!(grouped_schedule(&[7]), vec![0]);
        // All-same and all-distinct keys are both the identity.
        assert_eq!(grouped_schedule(&[5, 5, 5]), vec![0, 1, 2]);
        assert_eq!(grouped_schedule(&[1, 2, 3]), vec![0, 1, 2]);
    }

    #[test]
    fn scoped_guard_restores_previous_mode() {
        let initial = plan_mode();
        {
            let _g = PlanMode::Sequential.scoped();
            assert_eq!(plan_mode(), PlanMode::Sequential);
            {
                let _inner = PlanMode::Grouped.scoped();
                assert_eq!(plan_mode(), PlanMode::Grouped);
            }
            assert_eq!(plan_mode(), PlanMode::Sequential);
        }
        assert_eq!(plan_mode(), initial);
    }

    #[test]
    fn schedule_respects_plan_mode() {
        let keys = [9u64, 8, 9];
        {
            let _g = PlanMode::Sequential.scoped();
            assert_eq!(schedule(&keys), vec![0, 1, 2]);
        }
        let _g = PlanMode::Grouped.scoped();
        assert_eq!(schedule(&keys), vec![0, 2, 1]);
    }
}
