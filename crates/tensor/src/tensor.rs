//! The dense row-major tensor type.

use crate::kernels;
use crate::TensorError;
use fedpkd_rng::Rng;

/// A dense, row-major tensor of `f32` values.
///
/// Shapes are dynamic; the training stack uses rank-2 tensors
/// `[batch, features]` almost everywhere and rank-4 `[n, c, h, w]` on the
/// convolutional path.
///
/// # Examples
///
/// ```
/// use fedpkd_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.row(1), &[3.0, 4.0]);
/// # Ok::<(), fedpkd_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the product of `shape`
    /// does not equal `data.len()`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor of i.i.d. Gaussian entries with the given standard
    /// deviation (mean zero).
    pub fn randn(shape: &[usize], std_dev: f32, rng: &mut Rng) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|_| (rng.standard_normal() as f32) * std_dev)
            .collect();
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Creates a tensor of i.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| lo + rng.next_f32() * (hi - lo)).collect();
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows (first dimension). Zero for rank-0 tensors.
    pub fn rows(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Number of columns for a rank-2 tensor, or the row stride in general
    /// (product of all dimensions after the first).
    pub fn cols(&self) -> usize {
        self.shape.iter().skip(1).product()
    }

    /// Immutable view of the underlying data (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Immutable view of row `r` (all trailing dimensions flattened).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        let stride = self.cols();
        &self.data[r * stride..(r + 1) * stride]
    }

    /// Mutable view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let stride = self.cols();
        &mut self.data[r * stride..(r + 1) * stride]
    }

    /// Returns a new tensor containing the selected rows, in the given order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any index exceeds the row
    /// count.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Self, TensorError> {
        let stride = self.cols();
        let rows = self.rows();
        let mut data = Vec::with_capacity(indices.len() * stride);
        for &i in indices {
            if i >= rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: i,
                    bound: rows,
                });
            }
            data.extend_from_slice(self.row(i));
        }
        let mut shape = self.shape.clone();
        if shape.is_empty() {
            shape = vec![indices.len()];
        } else {
            shape[0] = indices.len();
        }
        Self::from_vec(data, &shape)
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element counts
    /// differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::ShapeDataMismatch {
                expected,
                actual: self.data.len(),
            });
        }
        Ok(Self {
            data: self.data.clone(),
            shape: shape.to_vec(),
        })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Self) -> Result<Self, TensorError> {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Self) -> Result<(), TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self * scalar` as a new tensor.
    pub fn scale(&self, scalar: f32) -> Self {
        self.map(|x| x * scalar)
    }

    /// In-place multiplication by a scalar.
    pub fn scale_in_place(&mut self, scalar: f32) {
        for x in &mut self.data {
            *x *= scalar;
        }
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Combines two equal-shaped tensors element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_with(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Result<Self, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(Self {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        })
    }

    /// Checks both operands are rank 2 with matching inner dimensions and
    /// returns `(m, k, n)`.
    fn matmul_dims(&self, other: &Self) -> Result<(usize, usize, usize), TensorError> {
        if self.shape.len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.len(),
            });
        }
        if other.shape.len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: other.shape.len(),
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            });
        }
        Ok((m, k, n))
    }

    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Dispatches to the tier selected by [`crate::kernels::kernel_mode`];
    /// all tiers are bit-identical (see the [`crate::kernels`] docs for the
    /// argument). The zero-skip optimization is gated on `other` being
    /// entirely finite, so a NaN or infinity in `other` always propagates —
    /// `0·NaN` is NaN, not 0.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2,
    /// or [`TensorError::MatmulDimMismatch`] if the inner dimensions differ.
    pub fn matmul(&self, other: &Self) -> Result<Self, TensorError> {
        let (m, k, n) = self.matmul_dims(other)?;
        let mut out = vec![0.0f32; m * n];
        match kernels::kernel_mode() {
            kernels::KernelMode::Scalar => {
                kernels::matmul_scalar_into(&self.data, &other.data, &mut out, m, k, n);
            }
            kernels::KernelMode::Fast => {
                kernels::matmul_fast_into(&self.data, &other.data, &mut out, m, k, n, None, false);
            }
        }
        Self::from_vec(out, &[m, n])
    }

    /// Matrix product via the reference scalar kernel (the i-k-j triple
    /// loop), regardless of the selected [`crate::kernels::KernelMode`].
    ///
    /// This is the baseline the tiled, transposed-packed, and row-parallel
    /// kernels are proven bit-identical to; benchmarks and equivalence
    /// tests call it directly.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::matmul`].
    pub fn matmul_scalar(&self, other: &Self) -> Result<Self, TensorError> {
        let (m, k, n) = self.matmul_dims(other)?;
        let mut out = vec![0.0f32; m * n];
        kernels::matmul_scalar_into(&self.data, &other.data, &mut out, m, k, n);
        Self::from_vec(out, &[m, n])
    }

    /// Fused affine map: `self × other + bias`, with an optional fused ReLU
    /// — `[m, k] × [k, n] + [n] → [m, n]`.
    ///
    /// The bias (and ReLU clamp) are applied per element *after* the full
    /// reduction, so the result is bit-identical to
    /// `matmul` → bias pass → ReLU pass; the fast tier folds them into the
    /// kernel epilogue to save the extra sweeps.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::matmul`], plus
    /// [`TensorError::ShapeMismatch`] if `bias` is not a length-`n` vector.
    pub fn matmul_bias(&self, other: &Self, bias: &Self, relu: bool) -> Result<Self, TensorError> {
        let (m, k, n) = self.matmul_dims(other)?;
        if bias.data.len() != n {
            return Err(TensorError::ShapeMismatch {
                left: vec![n],
                right: bias.shape.clone(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        match kernels::kernel_mode() {
            kernels::KernelMode::Scalar => {
                kernels::matmul_scalar_into(&self.data, &other.data, &mut out, m, k, n);
                kernels::epilogue_scalar_into(&mut out, n, Some(&bias.data), relu);
            }
            kernels::KernelMode::Fast => {
                kernels::matmul_fast_into(
                    &self.data,
                    &other.data,
                    &mut out,
                    m,
                    k,
                    n,
                    Some(&bias.data),
                    relu,
                );
            }
        }
        Self::from_vec(out, &[m, n])
    }

    /// Matrix product against a pre-transposed right operand:
    /// `self × otherᵀ`, with `self: [m, k]` and `other: [n, k] → [m, n]`.
    ///
    /// `other`'s rows are exactly the columns the product needs, so the
    /// fast tier reads both operands contiguously (a packed dot-product
    /// kernel) and no transpose is ever materialized — this is what the
    /// Dense backward uses for `dx = g·Wᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank
    /// 2, or [`TensorError::MatmulDimMismatch`] if the shared inner width
    /// `k` differs.
    pub fn matmul_transposed(&self, other: &Self) -> Result<Self, TensorError> {
        if self.shape.len() != 2 || other.shape.len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: if self.shape.len() != 2 {
                    self.shape.len()
                } else {
                    other.shape.len()
                },
            });
        }
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        if k != k2 {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: k,
                right_rows: k2,
            });
        }
        match kernels::kernel_mode() {
            kernels::KernelMode::Scalar => self.matmul_scalar(&other.transpose()?),
            kernels::KernelMode::Fast => {
                let mut out = vec![0.0f32; m * n];
                kernels::matmul_transposed_fast_into(&self.data, &other.data, &mut out, m, k, n);
                Self::from_vec(out, &[m, n])
            }
        }
    }

    /// Matrix product with a transposed left operand: `selfᵀ × other`, with
    /// `self: [r, m]` and `other: [r, n] → [m, n]`.
    ///
    /// The reduction runs over the shared row count `r`, so both operands
    /// are read in their natural row-major layout — this is what the Dense
    /// backward uses for `dW = xᵀ·g`, eliminating the per-batch
    /// `transpose()` allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank
    /// 2, or [`TensorError::MatmulDimMismatch`] if the row counts differ.
    pub fn tr_matmul(&self, other: &Self) -> Result<Self, TensorError> {
        if self.shape.len() != 2 || other.shape.len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: if self.shape.len() != 2 {
                    self.shape.len()
                } else {
                    other.shape.len()
                },
            });
        }
        let (r, m) = (self.shape[0], self.shape[1]);
        let (r2, n) = (other.shape[0], other.shape[1]);
        if r != r2 {
            return Err(TensorError::MatmulDimMismatch {
                left_cols: r,
                right_rows: r2,
            });
        }
        match kernels::kernel_mode() {
            kernels::KernelMode::Scalar => self.transpose()?.matmul_scalar(other),
            kernels::KernelMode::Fast => {
                let mut out = vec![0.0f32; m * n];
                kernels::tr_matmul_fast_into(&self.data, &other.data, &mut out, r, m, n);
                Self::from_vec(out, &[m, n])
            }
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank 2.
    pub fn transpose(&self) -> Result<Self, TensorError> {
        if self.shape.len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.len(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Self::from_vec(out, &[n, m])
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns 0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Sum along rows: `[m, n] → [n]` (column sums).
    pub fn sum_rows(&self) -> Self {
        let stride = self.cols();
        let mut out = vec![0.0f32; stride];
        for r in 0..self.rows() {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        Self {
            data: out,
            shape: vec![stride],
        }
    }

    /// Index of the maximum element of each row: `[m, n] → Vec` of length m.
    /// Ties resolve to the lowest index.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows())
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for (j, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Euclidean (L2) norm of the whole tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Squared L2 distance to another tensor of equal shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn squared_distance(&self, other: &Self) -> Result<f32, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Stacks rank-1 tensors (or equal-width rows) into a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the rows differ in length,
    /// or [`TensorError::ShapeDataMismatch`] if `rows` is empty.
    pub fn stack_rows(rows: &[&[f32]]) -> Result<Self, TensorError> {
        let Some(first) = rows.first() else {
            return Err(TensorError::ShapeDataMismatch {
                expected: 1,
                actual: 0,
            });
        };
        let width = first.len();
        let mut data = Vec::with_capacity(rows.len() * width);
        for r in rows {
            if r.len() != width {
                return Err(TensorError::ShapeMismatch {
                    left: vec![width],
                    right: vec![r.len()],
                });
            }
            data.extend_from_slice(r);
        }
        Self::from_vec(data, &[rows.len(), width])
    }

    /// Whether every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self {
            data: Vec::new(),
            shape: vec![0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn from_vec_validates_shape() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2]).is_ok());
        assert!(Tensor::from_vec(vec![], &[0, 5]).is_ok());
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[4], 2.5);
        assert!(f.as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    fn rows_and_cols() {
        let x = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(x.rows(), 2);
        assert_eq!(x.cols(), 3);
        assert_eq!(x.row(0), &[1., 2., 3.]);
        assert_eq!(x.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn rank4_cols_is_row_stride() {
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        assert_eq!(x.cols(), 48);
        assert_eq!(x.row(1).len(), 48);
    }

    #[test]
    fn select_rows_reorders() {
        let x = t(&[1., 2., 3., 4., 5., 6.], &[3, 2]);
        let y = x.select_rows(&[2, 0]).unwrap();
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.row(0), &[5., 6.]);
        assert_eq!(y.row(1), &[1., 2.]);
    }

    #[test]
    fn select_rows_out_of_bounds() {
        let x = t(&[1., 2.], &[1, 2]);
        assert!(matches!(
            x.select_rows(&[1]),
            Err(TensorError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1., 2., 3.], &[3]);
        let b = t(&[4., 5., 6.], &[3]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).as_slice(), &[2., 4., 6.]);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = t(&[1., 2.], &[2]);
        let b = t(&[1., 2.], &[1, 2]);
        assert!(a.add(&b).is_err());
        assert!(a.squared_distance(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1., 1.], &[2]);
        let b = t(&[2., 3.], &[2]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2., 2.5]);
    }

    #[test]
    fn matmul_known_product() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = t(&[7., 8., 9., 10., 11., 12.], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        let i = t(&[1., 0., 0., 1.], &[2, 2]);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_dim_checks() {
        let a = t(&[1., 2.], &[1, 2]);
        let b = t(&[1., 2., 3.], &[1, 3]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::MatmulDimMismatch { .. })
        ));
        let v = t(&[1., 2.], &[2]);
        assert!(matches!(
            v.matmul(&a),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn matmul_propagates_nan_hidden_behind_zero() {
        // Regression: the zero-skip branch used to turn `0·NaN` into `0`,
        // silently masking a diverged operand. A NaN in `b` must reach the
        // output even when the matching `a` entry is zero.
        let a = t(&[0.0, 1.0], &[1, 2]);
        let b = Tensor::from_vec(vec![f32::NAN, 2.0], &[2, 1]).unwrap();
        assert!(a.matmul(&b).unwrap().as_slice()[0].is_nan());
        assert!(a.matmul_scalar(&b).unwrap().as_slice()[0].is_nan());
    }

    #[test]
    fn matmul_propagates_infinity_hidden_behind_zero() {
        // `0·∞` is NaN; the skip must not convert it to 0.
        let a = t(&[0.0], &[1, 1]);
        let b = Tensor::from_vec(vec![f32::INFINITY], &[1, 1]).unwrap();
        assert!(a.matmul(&b).unwrap().as_slice()[0].is_nan());
    }

    #[test]
    fn matmul_zero_skip_is_exact_on_finite_inputs() {
        // With a finite right operand the skip must not change results.
        let a = t(&[0.0, -0.0, 2.0, 0.0, 1.0, -3.0], &[2, 3]);
        let b = t(&[-1., 5., 2., -2., 0., 4.], &[3, 2]);
        let dense = a.map(|x| if x == 0.0 { 1e-30 } else { x });
        let skipped = a.matmul(&b).unwrap();
        assert!(skipped.all_finite());
        // Spot-check against hand computation: row1 = [1*2 + -3*0, 1*-2 + -3*4].
        assert_eq!(skipped.row(1), &[2.0, -14.0]);
        assert!(dense.matmul(&b).is_ok());
    }

    #[test]
    fn matmul_bias_matches_unfused_composition() {
        let mut rng = Rng::seed_from_u64(11);
        let a = Tensor::rand_uniform(&[5, 7], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[7, 3], -1.0, 1.0, &mut rng);
        let bias = Tensor::rand_uniform(&[3], -1.0, 1.0, &mut rng);
        let fused = a.matmul_bias(&b, &bias, true).unwrap();
        let mut unfused = a.matmul_scalar(&b).unwrap();
        for r in 0..unfused.rows() {
            for (o, &bv) in unfused.row_mut(r).iter_mut().zip(bias.as_slice()) {
                *o += bv;
            }
        }
        let unfused = unfused.map(|x| x.max(0.0));
        assert_eq!(
            fused
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            unfused
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn matmul_bias_rejects_wrong_bias_width() {
        let a = t(&[1., 2.], &[1, 2]);
        let b = t(&[1., 2., 3., 4.], &[2, 2]);
        let bias = t(&[1., 2., 3.], &[3]);
        assert!(matches!(
            a.matmul_bias(&b, &bias, false),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_transposed_matches_materialized_transpose() {
        let mut rng = Rng::seed_from_u64(12);
        let a = Tensor::rand_uniform(&[6, 9], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[4, 9], -1.0, 1.0, &mut rng);
        let fast = a.matmul_transposed(&b).unwrap();
        let reference = a.matmul_scalar(&b.transpose().unwrap()).unwrap();
        assert_eq!(fast, reference);
        assert_eq!(fast.shape(), &[6, 4]);
    }

    #[test]
    fn tr_matmul_matches_materialized_transpose() {
        let mut rng = Rng::seed_from_u64(13);
        let a = Tensor::rand_uniform(&[9, 6], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(&[9, 4], -1.0, 1.0, &mut rng);
        let fast = a.tr_matmul(&b).unwrap();
        let reference = a.transpose().unwrap().matmul_scalar(&b).unwrap();
        assert_eq!(fast, reference);
        assert_eq!(fast.shape(), &[6, 4]);
    }

    #[test]
    fn transposed_kernels_check_dims() {
        let a = t(&[1., 2.], &[1, 2]);
        let b = t(&[1., 2., 3.], &[1, 3]);
        assert!(a.matmul_transposed(&b).is_err());
        assert!(a.tr_matmul(&b).is_ok()); // shared row count 1 → [2, 3]
        let c = t(&[1., 2., 3.], &[3]);
        assert!(a.matmul_transposed(&c).is_err());
        assert!(c.tr_matmul(&a).is_err());
        let d = t(&[1., 2., 3., 4.], &[2, 2]);
        assert!(a.tr_matmul(&d).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(&[1., 2., 3., 4., 5., 6.], &[2, 3]);
        let at = a.transpose().unwrap();
        assert_eq!(at.shape(), &[3, 2]);
        assert_eq!(at.as_slice(), &[1., 4., 2., 5., 3., 6.]);
        assert_eq!(at.transpose().unwrap(), a);
    }

    #[test]
    fn reductions() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.sum_rows().as_slice(), &[4., 6.]);
    }

    #[test]
    fn empty_tensor_reductions() {
        let e = Tensor::zeros(&[0]);
        assert_eq!(e.sum(), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max(), f32::NEG_INFINITY);
    }

    #[test]
    fn argmax_rows_breaks_ties_low() {
        let a = t(&[1., 3., 3., 0., 5., 2.], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 1]);
    }

    #[test]
    fn norms_and_distances() {
        let a = t(&[3., 4.], &[2]);
        assert!((a.l2_norm() - 5.0).abs() < 1e-6);
        let b = t(&[0., 0.], &[2]);
        assert!((a.squared_distance(&b).unwrap() - 25.0).abs() < 1e-6);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let rows: Vec<&[f32]> = vec![&[1., 2.], &[3., 4.], &[5., 6.]];
        let m = Tensor::stack_rows(&rows).unwrap();
        assert_eq!(m.shape(), &[3, 2]);
        assert_eq!(m.row(2), &[5., 6.]);
    }

    #[test]
    fn stack_rows_rejects_ragged() {
        let rows: Vec<&[f32]> = vec![&[1., 2.], &[3.]];
        assert!(Tensor::stack_rows(&rows).is_err());
        let empty: Vec<&[f32]> = vec![];
        assert!(Tensor::stack_rows(&empty).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = t(&[1., 2., 3., 4.], &[2, 2]);
        let b = a.reshape(&[4]).unwrap();
        assert_eq!(b.shape(), &[4]);
        assert_eq!(b.as_slice(), a.as_slice());
        assert!(a.reshape(&[5]).is_err());
    }

    #[test]
    fn randn_statistics() {
        let mut rng = Rng::seed_from_u64(9);
        let x = Tensor::randn(&[10_000], 2.0, &mut rng);
        let mean = x.mean();
        let var = x.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.1);
        assert!((var - 4.0).abs() < 0.3);
        assert!(x.all_finite());
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = Rng::seed_from_u64(10);
        let x = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(x.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }
}
