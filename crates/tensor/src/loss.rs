//! Loss functions and their gradients.
//!
//! Every loss returns `(scalar_loss, gradient_w.r.t._its_input)` so the
//! training loops can feed the gradient straight into
//! [`Layer::backward`](crate::nn::Layer::backward). All losses average over
//! the batch dimension.
//!
//! The softmax-family losses ([`CrossEntropy`], [`DistillKl`]) are
//! two-tiered like the matmul kernels: the scalar tier composes
//! [`crate::ops::softmax`]/[`crate::ops::log_softmax`] as separate
//! whole-tensor passes (the obviously-correct reference), while the fast
//! tier runs the fused epilogue row kernels from [`crate::kernels`] — one
//! pass per row, no intermediate tensors. The tiers are bit-identical by
//! the epilogue fusion contract documented in [`crate::kernels`].

use crate::kernels::{
    kernel_mode, softmax_kl_row, softmax_kl_xent_row, softmax_xent_row, KernelMode,
};
use crate::ops::{log_softmax, softmax};
use crate::Tensor;

/// Cross-entropy between logits and integer class labels
/// (softmax + negative log-likelihood).
///
/// Used for supervised local training on private data (Eq. 4 of the paper).
///
/// # Examples
///
/// ```
/// use fedpkd_tensor::loss::CrossEntropy;
/// use fedpkd_tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0], &[1, 3])?;
/// let (loss, grad) = CrossEntropy::new().loss_and_grad(&logits, &[0]);
/// assert!(loss > 0.0);
/// assert_eq!(grad.shape(), &[1, 3]);
/// # Ok::<(), fedpkd_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropy;

impl CrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        Self
    }

    /// Computes the mean cross-entropy over the batch and its gradient with
    /// respect to the logits.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the batch size or any label is
    /// out of range.
    pub fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let n = logits.rows();
        let k = logits.cols();
        assert_eq!(labels.len(), n, "one label per row required");
        if kernel_mode() == KernelMode::Fast {
            // Fused tier: one pass per row produces both the softmax
            // gradient seed and the log-likelihood — bit-identical to the
            // composed reference below by the epilogue fusion contract.
            let mut grad = Tensor::zeros(logits.shape());
            let mut loss = 0.0f32;
            for (r, &y) in labels.iter().enumerate() {
                assert!(y < k, "label {y} out of range for {k} classes");
                loss -= softmax_xent_row(logits.row(r), 1.0, y, grad.row_mut(r));
                grad.row_mut(r)[y] -= 1.0;
            }
            let inv_n = 1.0 / n.max(1) as f32;
            grad.scale_in_place(inv_n);
            return (loss * inv_n, grad);
        }
        let log_p = log_softmax(logits, 1.0);
        let mut loss = 0.0f32;
        let mut grad = softmax(logits, 1.0);
        for (r, &y) in labels.iter().enumerate() {
            assert!(y < k, "label {y} out of range for {k} classes");
            loss -= log_p.row(r)[y];
            grad.row_mut(r)[y] -= 1.0;
        }
        let inv_n = 1.0 / n.max(1) as f32;
        grad.scale_in_place(inv_n);
        (loss * inv_n, grad)
    }

    /// Computes only the mean loss (no gradient), for evaluation.
    pub fn loss(&self, logits: &Tensor, labels: &[usize]) -> f32 {
        let n = logits.rows();
        assert_eq!(labels.len(), n, "one label per row required");
        let log_p = log_softmax(logits, 1.0);
        let total: f32 = labels
            .iter()
            .enumerate()
            .map(|(r, &y)| -log_p.row(r)[y])
            .sum();
        total / n.max(1) as f32
    }
}

/// Cross-entropy between logits and *soft* target distributions.
///
/// The target of each row is a probability vector rather than a hard label;
/// this is the `L_CE` of Eq. 11/15 when the pseudo-label comes from
/// aggregated soft knowledge.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftCrossEntropy;

impl SoftCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        Self
    }

    /// Computes the mean soft cross-entropy `−Σ t · log softmax(z)` and its
    /// gradient with respect to the logits.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn loss_and_grad(&self, logits: &Tensor, targets: &Tensor) -> (f32, Tensor) {
        assert_eq!(logits.shape(), targets.shape(), "shape mismatch");
        let n = logits.rows().max(1) as f32;
        let log_p = log_softmax(logits, 1.0);
        let loss = -log_p.mul(targets).expect("shapes checked above").sum() / n;
        let mut grad = softmax(logits, 1.0)
            .sub(targets)
            .expect("shapes checked above");
        grad.scale_in_place(1.0 / n);
        (loss, grad)
    }
}

/// Temperature-scaled KL-divergence distillation loss,
/// `T² · KL(teacher ‖ student)`.
///
/// `teacher` is a matrix of teacher *probabilities* (already softened if
/// desired); the student is given as raw logits. The classic `T²` factor
/// (Hinton et al.) keeps gradient magnitudes comparable across temperatures.
/// This is `L_KL` in Eqs. 11 and 15.
#[derive(Debug, Clone, Copy)]
pub struct DistillKl {
    temperature: f32,
}

impl DistillKl {
    /// Creates the loss with the given softmax temperature.
    ///
    /// # Panics
    ///
    /// Panics if `temperature <= 0`.
    pub fn new(temperature: f32) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        Self { temperature }
    }

    /// The configured temperature.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Computes the mean distillation loss over the batch and its gradient
    /// with respect to the student logits.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn loss_and_grad(&self, student_logits: &Tensor, teacher_probs: &Tensor) -> (f32, Tensor) {
        assert_eq!(
            student_logits.shape(),
            teacher_probs.shape(),
            "shape mismatch"
        );
        let t = self.temperature;
        let n = student_logits.rows().max(1) as f32;
        if kernel_mode() == KernelMode::Fast {
            // Fused tier: one pass per row produces the student
            // probabilities and the row's KL contribution — bit-identical
            // to the composed reference below by the epilogue fusion
            // contract (both accumulate per-row sub-sums, then fold the
            // rows in order).
            let mut grad = Tensor::zeros(student_logits.shape());
            let mut loss = 0.0f32;
            for r in 0..teacher_probs.rows() {
                loss += softmax_kl_row(
                    student_logits.row(r),
                    teacher_probs.row(r),
                    t,
                    grad.row_mut(r),
                );
            }
            loss = loss * t * t / n;
            for (g, &p) in grad.as_mut_slice().iter_mut().zip(teacher_probs.as_slice()) {
                *g -= p;
            }
            grad.scale_in_place(t / n);
            return (loss, grad);
        }
        let log_q = log_softmax(student_logits, t);
        let q = softmax(student_logits, t);

        // KL(p ‖ q) = Σ p (ln p − ln q); terms with p = 0 contribute 0.
        // Accumulated as per-row sub-sums folded in row order — the same
        // association the fused tier uses, so the tiers match bit for bit.
        let mut loss = 0.0f32;
        for r in 0..teacher_probs.rows() {
            let p_row = teacher_probs.row(r);
            let lq_row = log_q.row(r);
            let mut row_loss = 0.0f32;
            for (j, &p) in p_row.iter().enumerate() {
                if p > 0.0 {
                    row_loss += p * (p.ln() - lq_row[j]);
                }
            }
            loss += row_loss;
        }
        loss = loss * t * t / n;

        // d/dz [T²·KL] = T · (q − p), averaged over the batch.
        let mut grad = q.sub(teacher_probs).expect("shapes checked above");
        grad.scale_in_place(t / n);
        (loss, grad)
    }
}

/// Computes the temperature-`T` KL distillation term and the temperature-1
/// hard-label cross-entropy term **on the same logits** in one call — the
/// shape of Eqs. 11 and 15, where a student batch feeds both losses.
///
/// Returns `((kl_loss, kl_grad), (ce_loss, ce_grad))`, each exactly what
/// [`DistillKl::loss_and_grad`] and [`CrossEntropy::loss_and_grad`] return
/// for the same inputs — bit for bit, in both kernel tiers. The fast tier
/// fuses the two softmax families through
/// [`crate::kernels::softmax_kl_xent_row`], sharing the row-max reduction
/// and skipping all four intermediate softmax/log-softmax tensors.
///
/// # Panics
///
/// Panics if shapes disagree, `labels.len()` differs from the batch size,
/// or any label is out of range.
pub fn distill_kl_ce(
    kl: &DistillKl,
    logits: &Tensor,
    teacher_probs: &Tensor,
    labels: &[usize],
) -> ((f32, Tensor), (f32, Tensor)) {
    assert_eq!(logits.shape(), teacher_probs.shape(), "shape mismatch");
    let n = logits.rows();
    let k = logits.cols();
    assert_eq!(labels.len(), n, "one label per row required");
    if kernel_mode() == KernelMode::Fast {
        let t = kl.temperature();
        let n_f = n.max(1) as f32;
        let mut kl_grad = Tensor::zeros(logits.shape());
        let mut ce_grad = Tensor::zeros(logits.shape());
        let mut kl_loss = 0.0f32;
        let mut ce_loss = 0.0f32;
        for (r, &y) in labels.iter().enumerate() {
            assert!(y < k, "label {y} out of range for {k} classes");
            let (row_kl, log_p_label) = softmax_kl_xent_row(
                logits.row(r),
                teacher_probs.row(r),
                t,
                y,
                kl_grad.row_mut(r),
                ce_grad.row_mut(r),
            );
            kl_loss += row_kl;
            ce_loss -= log_p_label;
            ce_grad.row_mut(r)[y] -= 1.0;
        }
        kl_loss = kl_loss * t * t / n_f;
        for (g, &p) in kl_grad
            .as_mut_slice()
            .iter_mut()
            .zip(teacher_probs.as_slice())
        {
            *g -= p;
        }
        kl_grad.scale_in_place(t / n_f);
        let inv_n = 1.0 / n.max(1) as f32;
        ce_grad.scale_in_place(inv_n);
        return ((kl_loss, kl_grad), (ce_loss * inv_n, ce_grad));
    }
    let kl_out = kl.loss_and_grad(logits, teacher_probs);
    let ce_out = CrossEntropy::new().loss_and_grad(logits, labels);
    (kl_out, ce_out)
}

/// Mean-squared error, averaged over every element.
///
/// This is the prototype-regularization loss `L_MSE` of Eqs. 12 and 16: it
/// pulls each sample's feature embedding toward the global prototype of its
/// (pseudo-)label.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mse;

impl Mse {
    /// Creates the loss.
    pub fn new() -> Self {
        Self
    }

    /// Computes the mean squared error and its gradient with respect to
    /// `prediction`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn loss_and_grad(&self, prediction: &Tensor, target: &Tensor) -> (f32, Tensor) {
        assert_eq!(prediction.shape(), target.shape(), "shape mismatch");
        let n = prediction.len().max(1) as f32;
        let diff = prediction.sub(target).expect("shapes checked above");
        let loss = diff.as_slice().iter().map(|d| d * d).sum::<f32>() / n;
        let grad = diff.scale(2.0 / n);
        (loss, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    /// Finite-difference check of a loss gradient.
    fn check_grad(loss_fn: impl Fn(&Tensor) -> (f32, Tensor), logits: &Tensor, tol: f32) {
        let (_, analytic) = loss_fn(logits);
        let eps = 1e-2f32;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[i] -= eps;
            let numeric = (loss_fn(&plus).0 - loss_fn(&minus).0) / (2.0 * eps);
            let got = analytic.as_slice()[i];
            assert!(
                (numeric - got).abs() < tol * (1.0 + numeric.abs()),
                "grad {i}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_has_low_loss() {
        let good = t(&[10.0, -10.0], &[1, 2]);
        let bad = t(&[-10.0, 10.0], &[1, 2]);
        let ce = CrossEntropy::new();
        assert!(ce.loss(&good, &[0]) < 1e-3);
        assert!(ce.loss(&bad, &[0]) > 5.0);
    }

    #[test]
    fn cross_entropy_uniform_logits_is_ln_k() {
        let ce = CrossEntropy::new();
        let logits = Tensor::zeros(&[4, 10]);
        let loss = ce.loss(&logits, &[0, 3, 5, 9]);
        assert!((loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let logits = t(&[0.5, -1.0, 2.0, 1.0, 0.0, -0.5], &[2, 3]);
        let labels = vec![2usize, 0];
        check_grad(
            |z| CrossEntropy::new().loss_and_grad(z, &labels),
            &logits,
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_gradient_rows_sum_to_zero() {
        let logits = t(&[0.5, -1.0, 2.0], &[1, 3]);
        let (_, g) = CrossEntropy::new().loss_and_grad(&logits, &[1]);
        assert!(g.row(0).iter().sum::<f32>().abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "label 3 out of range")]
    fn cross_entropy_rejects_bad_label() {
        let logits = Tensor::zeros(&[1, 3]);
        CrossEntropy::new().loss_and_grad(&logits, &[3]);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn cross_entropy_rejects_label_count_mismatch() {
        let logits = Tensor::zeros(&[2, 3]);
        CrossEntropy::new().loss_and_grad(&logits, &[0]);
    }

    #[test]
    fn soft_cross_entropy_matches_hard_on_onehot() {
        let logits = t(&[0.5, -1.0, 2.0], &[1, 3]);
        let (hard, hard_g) = CrossEntropy::new().loss_and_grad(&logits, &[2]);
        let onehot = t(&[0.0, 0.0, 1.0], &[1, 3]);
        let (soft, soft_g) = SoftCrossEntropy::new().loss_and_grad(&logits, &onehot);
        assert!((hard - soft).abs() < 1e-6);
        for (a, b) in hard_g.as_slice().iter().zip(soft_g.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn soft_cross_entropy_gradient_check() {
        let logits = t(&[0.5, -1.0, 2.0, 0.0, 0.3, -0.7], &[2, 3]);
        let targets = t(&[0.2, 0.5, 0.3, 0.6, 0.1, 0.3], &[2, 3]);
        check_grad(
            |z| SoftCrossEntropy::new().loss_and_grad(z, &targets),
            &logits,
            1e-2,
        );
    }

    #[test]
    fn distill_kl_is_zero_when_student_matches_teacher() {
        let logits = t(&[1.0, 2.0, 3.0], &[1, 3]);
        let teacher = softmax(&logits, 2.0);
        let (loss, grad) = DistillKl::new(2.0).loss_and_grad(&logits, &teacher);
        assert!(loss.abs() < 1e-6, "loss {loss}");
        assert!(grad.as_slice().iter().all(|g| g.abs() < 1e-6));
    }

    #[test]
    fn distill_kl_is_nonnegative() {
        let student = t(&[3.0, 0.0, -1.0], &[1, 3]);
        let teacher = t(&[0.1, 0.8, 0.1], &[1, 3]);
        let (loss, _) = DistillKl::new(1.0).loss_and_grad(&student, &teacher);
        assert!(loss > 0.0);
    }

    #[test]
    fn distill_kl_gradient_check() {
        let student = t(&[0.5, -1.0, 2.0, 0.1, 0.2, 0.3], &[2, 3]);
        let teacher = t(&[0.7, 0.2, 0.1, 0.3, 0.3, 0.4], &[2, 3]);
        for temp in [1.0, 3.0] {
            check_grad(
                |z| DistillKl::new(temp).loss_and_grad(z, &teacher),
                &student,
                1e-2,
            );
        }
    }

    #[test]
    fn distill_kl_handles_zero_teacher_probabilities() {
        let student = t(&[1.0, 0.0], &[1, 2]);
        let teacher = t(&[1.0, 0.0], &[1, 2]);
        let (loss, grad) = DistillKl::new(1.0).loss_and_grad(&student, &teacher);
        assert!(loss.is_finite());
        assert!(grad.all_finite());
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn distill_kl_rejects_zero_temperature() {
        let _ = DistillKl::new(0.0);
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let pred = t(&[1.0, 2.0], &[1, 2]);
        let target = t(&[0.0, 0.0], &[1, 2]);
        let (loss, grad) = Mse::new().loss_and_grad(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(grad.as_slice(), &[1.0, 2.0]); // 2·diff / 2
    }

    #[test]
    fn mse_gradient_check() {
        let pred = t(&[0.5, -1.0, 2.0, 0.3], &[2, 2]);
        let target = t(&[0.0, 1.0, -1.0, 0.3], &[2, 2]);
        check_grad(|p| Mse::new().loss_and_grad(p, &target), &pred, 1e-2);
    }

    #[test]
    fn mse_zero_when_equal() {
        let x = t(&[1.0, 2.0, 3.0], &[3]);
        let (loss, grad) = Mse::new().loss_and_grad(&x, &x);
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }
}
