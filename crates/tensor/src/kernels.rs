//! Tiered matrix-multiply kernels.
//!
//! Every FedPKD phase — private training, public-set logit uploads, the
//! Eq. 10 filter's embedding pass, and server ensemble distillation —
//! funnels through a handful of matrix products. This module provides them
//! in two tiers that are **bit-identical** by construction:
//!
//! - **Scalar** — the reference i-k-j triple loop (plus materialized
//!   transposes and unfused bias/ReLU passes at the [`crate::Tensor`]
//!   level). Slow but obviously correct; the baseline every other tier is
//!   tested and benchmarked against.
//! - **Fast** — register-tiled micro-kernels (4×32 accumulator tiles held
//!   in registers across the whole reduction), an `A·Bᵀ` path that repacks
//!   the transposed operand once and reuses the tiled kernel, a
//!   transposed-self kernel for `Aᵀ·B`, fused bias+ReLU epilogues, and a
//!   row-parallel path for large products.
//!
//! # Why the tiers are bit-identical
//!
//! For every output element, every kernel accumulates the products
//! `a[i][k]·b[k][j]` in the *same* order — reduction index strictly
//! increasing, starting from `+0.0` (or from the bias epilogue applied
//! *after* the full sum, matching the unfused bias pass). Tiling only
//! reorders work *across* output elements, never within one, and IEEE 754
//! addition is deterministic, so the bits match. The row-parallel path
//! splits the *output rows* across threads; rows never share an
//! accumulator, so the result is independent of thread count and schedule.
//!
//! The scalar tier's zero-skip (skip a whole `b` row when `a[i][k] == 0`)
//! is exact by the same coin, read both ways: the accumulator starts at
//! `+0.0` and IEEE addition only produces `-0.0` from two negative zeros,
//! so the accumulator is never `-0.0` — which means adding a `±0.0`
//! product is a bit-exact no-op, and *skipping* it changes nothing. That
//! argument requires the skipped products to *be* `±0.0` — `0·NaN` and
//! `0·∞` are NaN — so the scalar kernel gates the skip on the right-hand
//! operand being entirely finite, checked once per call. A NaN planted in
//! `b` therefore propagates to the output instead of being silently
//! masked (the PR 5 NaN-masking fix).
//!
//! The fast tier runs the same theorem in the other direction: it never
//! skips anything. Computing every product unconditionally adds only
//! `±0.0` terms the scalar tier would have skipped (the skip only fires
//! for `a == 0` against finite `b`), so the bits still match — and the
//! kernels become branch-free straight-line FMA code, which is where the
//! speedup comes from. Post-ReLU activations are roughly half zeros with
//! an unpredictable pattern; a per-element skip test mispredicts
//! constantly, while the branchless tile pays two fused multiply-adds per
//! vector and never stalls. Dropping the skip also drops the fast tier's
//! per-call finiteness scan, and `0·NaN = NaN` propagates naturally.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::parallel;

/// Which kernel tier [`crate::Tensor::matmul`] and friends dispatch to.
///
/// Both tiers produce bit-identical results (see the module docs); the
/// switch exists so benchmarks and equivalence tests can time or compare
/// the tiers on identical workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Reference scalar kernels: the i-k-j triple loop, materialized
    /// transposes, and unfused bias/ReLU passes.
    Scalar,
    /// Register-tiled kernels with fused epilogues and the row-parallel
    /// large-matmul path (the default).
    Fast,
}

/// Sentinel: the mode has not been resolved from the environment yet.
const MODE_UNSET: u8 = u8::MAX;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

fn mode_to_raw(mode: KernelMode) -> u8 {
    match mode {
        KernelMode::Scalar => 0,
        KernelMode::Fast => 1,
    }
}

fn raw_to_mode(raw: u8) -> KernelMode {
    if raw == 0 {
        KernelMode::Scalar
    } else {
        KernelMode::Fast
    }
}

/// The process-wide default tier, read once from `FEDPKD_KERNELS`
/// (`scalar` selects the reference tier; anything else — including the
/// variable being unset — selects the fast tier).
fn env_default() -> u8 {
    match std::env::var("FEDPKD_KERNELS") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => 0,
        _ => 1,
    }
}

impl KernelMode {
    /// Selects this kernel tier for the lifetime of the returned guard and
    /// restores the previous tier when the guard drops (including on
    /// panic-unwind, so a failing test can no longer leak its tier into
    /// later tests).
    ///
    /// The underlying switch is still process-wide — worker threads spawned
    /// by [`crate::parallel`] consult the same switch, which is exactly why
    /// it cannot be thread-local — so overlapping guards on different
    /// threads share it: the last guard to drop wins. That is safe (tiers
    /// are bit-identical; see the module docs) but makes concurrent timing
    /// comparisons meaningless, so benchmarks serialize their guarded
    /// sections.
    #[must_use = "the tier reverts as soon as the guard drops"]
    pub fn scoped(self) -> KernelModeGuard {
        let prev = kernel_mode();
        MODE.store(mode_to_raw(self), Ordering::Relaxed);
        KernelModeGuard { prev }
    }
}

/// RAII guard from [`KernelMode::scoped`]: restores the previously selected
/// tier on drop.
#[derive(Debug)]
pub struct KernelModeGuard {
    prev: KernelMode,
}

impl Drop for KernelModeGuard {
    fn drop(&mut self) {
        MODE.store(mode_to_raw(self.prev), Ordering::Relaxed);
    }
}

/// Selects the kernel tier process-wide.
///
/// Safe to flip at any time — tiers are bit-identical, so concurrent
/// readers only ever observe a speed difference, never a value difference.
#[deprecated(
    since = "0.6.0",
    note = "use the scoped RAII guard `KernelMode::scoped(mode)` so the \
            process-wide tier cannot leak past the caller"
)]
pub fn set_kernel_mode(mode: KernelMode) {
    MODE.store(mode_to_raw(mode), Ordering::Relaxed);
}

/// The currently selected kernel tier.
///
/// On first call this resolves the default from the `FEDPKD_KERNELS`
/// environment variable (`scalar` → [`KernelMode::Scalar`], anything else
/// → [`KernelMode::Fast`]); afterwards it reflects the innermost live
/// [`KernelMode::scoped`] guard.
pub fn kernel_mode() -> KernelMode {
    let raw = MODE.load(Ordering::Relaxed);
    if raw != MODE_UNSET {
        return raw_to_mode(raw);
    }
    let resolved = env_default();
    // A concurrent first call may have resolved (or a guard may have set)
    // the mode in the meantime; the first store wins.
    match MODE.compare_exchange(MODE_UNSET, resolved, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => raw_to_mode(resolved),
        Err(current) => raw_to_mode(current),
    }
}

/// Rows of the output computed per register tile.
const MI: usize = 4;
/// Columns of the output computed per register tile (four 16-lane or eight
/// 8-lane vectors). `MI × NJ` accumulator lanes give sixteen independent
/// 16-lane add chains — enough to hide the 4-cycle FP-add latency that a
/// narrower tile leaves exposed.
const NJ: usize = 64;
/// Mop-up tile width for column counts the wide tile cannot cover. The
/// capacity-tier hidden widths 48 and 80 leave 48- and 16-column tails
/// after the 64-wide pass; without this tile those tails fell through to
/// the scalar remainder strip, which is why client training lagged the
/// server phases.
const NJ_NARROW: usize = 16;
/// Minimum multiply-adds before the row-parallel path engages; below this
/// the scoped-thread spawn cost outweighs the work.
const PAR_MIN_MADDS: usize = 1 << 22;
/// Minimum output rows a worker must receive for a parallel split.
const PAR_MIN_ROWS: usize = 64;

fn all_finite(xs: &[f32]) -> bool {
    xs.iter().all(|x| x.is_finite())
}

/// Applies the fused epilogue to one finished value at output column `j`.
#[inline]
fn finish(v: f32, j: usize, bias: Option<&[f32]>, relu: bool) -> f32 {
    let mut v = match bias {
        Some(b) => v + b[j],
        None => v,
    };
    if relu {
        v = v.max(0.0);
    }
    v
}

/// Reference kernel: `out += A·B` in i-k-j order with the finite-gated
/// zero-skip. `out` must be zeroed. No epilogue — the scalar tier applies
/// bias and ReLU as separate passes, mirroring the historical layer code.
pub(crate) fn matmul_scalar_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    // The skip is only exact when `0·b` is `±0.0`; a non-finite `b` value
    // must poison the output, so disable the skip entirely in that case.
    let skip = all_finite(b);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if skip && av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Scalar-tier epilogue: a bias pass then a ReLU pass, each a separate
/// sweep over `out` (bit-identical to the fused epilogue, which also adds
/// bias before clamping, per element).
pub(crate) fn epilogue_scalar_into(out: &mut [f32], n: usize, bias: Option<&[f32]>, relu: bool) {
    if let Some(bias) = bias {
        for row in out.chunks_mut(n) {
            for (o, &bv) in row.iter_mut().zip(bias) {
                *o += bv;
            }
        }
    }
    if relu {
        for o in out.iter_mut() {
            *o = o.max(0.0);
        }
    }
}

/// Fast tier: `out = epilogue(A·B)`, register-tiled, row-parallel when the
/// product is large. `out` must be zeroed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_fast_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    bias: Option<&[f32]>,
    relu: bool,
) {
    if m * k * n >= PAR_MIN_MADDS && m >= 2 * PAR_MIN_ROWS {
        parallel::for_each_row_chunk(out, n, PAR_MIN_ROWS, |row0, chunk| {
            let rows = chunk.len() / n;
            matmul_block(
                &a[row0 * k..(row0 + rows) * k],
                b,
                chunk,
                rows,
                k,
                n,
                bias,
                relu,
            );
        });
    } else {
        matmul_block(a, b, out, m, k, n, bias, relu);
    }
}

/// Register-tiled `A·B` over a contiguous block of output rows.
///
/// Full `MI×NJ` tiles keep their accumulators in registers for the whole
/// reduction — the scalar loop's per-`k` reload/store of the output row is
/// the hot path's dominant memory traffic, and this removes it. The tile
/// body is branch-free (see the module docs for why skipping nothing is
/// still bit-identical to the skipping scalar loop). Remainder strips fall
/// back to a branchless scalar loop with the same per-element order.
#[allow(clippy::too_many_arguments)]
fn matmul_block(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    rows: usize,
    k: usize,
    n: usize,
    bias: Option<&[f32]>,
    relu: bool,
) {
    let mut i0 = 0;
    while i0 + MI <= rows {
        let mut j0 = 0;
        while j0 + NJ <= n {
            matmul_tile::<NJ>(a, b, out, i0, j0, k, n, bias, relu);
            j0 += NJ;
        }
        while j0 + NJ_NARROW <= n {
            matmul_tile::<NJ_NARROW>(a, b, out, i0, j0, k, n, bias, relu);
            j0 += NJ_NARROW;
        }
        if j0 < n {
            matmul_strip(a, b, out, i0, MI, j0, k, n, bias, relu);
        }
        i0 += MI;
    }
    if i0 < rows {
        matmul_strip(a, b, out, i0, rows - i0, 0, k, n, bias, relu);
    }
}

/// One `MI × W` register tile of `A·B` at output rows `[i0, i0+MI)` and
/// columns `[j0, j0+W)`, accumulators pinned in registers for the whole
/// reduction. Per output element the reduction index is strictly
/// increasing from `+0.0`, so every tile width produces the same bits.
#[allow(clippy::too_many_arguments)]
#[inline]
fn matmul_tile<const W: usize>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    j0: usize,
    k: usize,
    n: usize,
    bias: Option<&[f32]>,
    relu: bool,
) {
    let (a0, a1, a2, a3) = (
        &a[i0 * k..(i0 + 1) * k],
        &a[(i0 + 1) * k..(i0 + 2) * k],
        &a[(i0 + 2) * k..(i0 + 3) * k],
        &a[(i0 + 3) * k..(i0 + 4) * k],
    );
    let mut acc = [[0.0f32; W]; MI];
    // Zip-driven iteration: no index arithmetic or bounds checks
    // survive in the loop body, so it compiles to straight-line
    // vector fused-multiply-adds with the accumulators pinned in
    // registers for the entire reduction.
    let rows_iter = a0.iter().zip(a1).zip(a2).zip(a3);
    for ((((&av0, &av1), &av2), &av3), brow) in rows_iter.zip(b.chunks_exact(n)) {
        let bseg: &[f32; W] = brow[j0..j0 + W].try_into().expect("tile width");
        let avs = [av0, av1, av2, av3];
        for (acc_row, av) in acc.iter_mut().zip(avs) {
            for (x, &bv) in acc_row.iter_mut().zip(bseg) {
                *x += av * bv;
            }
        }
    }
    for (ii, acc_row) in acc.iter().enumerate() {
        let dst = &mut out[(i0 + ii) * n + j0..(i0 + ii) * n + j0 + W];
        for (jj, (o, &v)) in dst.iter_mut().zip(acc_row).enumerate() {
            *o = finish(v, j0 + jj, bias, relu);
        }
    }
}

/// Branchless scalar strip of `A·B` covering rows `[i0, i0+rows)` and
/// columns `[j0, n)`, with the epilogue applied in place after each row's
/// full reduction.
#[allow(clippy::too_many_arguments)]
fn matmul_strip(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    i0: usize,
    rows: usize,
    j0: usize,
    k: usize,
    n: usize,
    bias: Option<&[f32]>,
    relu: bool,
) {
    for i in i0..i0 + rows {
        let a_row = &a[i * k..(i + 1) * k];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n + j0..(kk + 1) * n];
            let out_row = &mut out[i * n + j0..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
        let out_row = &mut out[i * n + j0..(i + 1) * n];
        for (jj, o) in out_row.iter_mut().enumerate() {
            *o = finish(*o, j0 + jj, bias, relu);
        }
    }
}

/// Fast tier: `out = A·Bᵀ` with `b` given in transposed layout `[n, k]`
/// (the Dense backward's `dx = g·Wᵀ` shape). `out` must be zeroed.
///
/// A direct dot-product kernel over the packed rows cannot vectorize: each
/// output element is one k-sequential FP-add chain, and reassociating it
/// into vector lanes would change the bits. Instead the operand is repacked
/// into row-major `[k, n]` — an O(k·n) shuffle against the product's
/// O(m·k·n) work — and the product runs through the vectorized tiled
/// kernel. Per output element the reduction index is still strictly
/// increasing, so the result is bit-identical to the sequential dot while
/// the flops run wide.
pub(crate) fn matmul_transposed_fast_into(
    a: &[f32],
    bt: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    if k == 0 {
        return;
    }
    // Pooled scratch: the repack writes every element before the product
    // reads it, so the buffer's stale contents never leak into the result.
    crate::parallel::scratch::with_f32s(k * n, |b_packed| {
        for (kk, packed_row) in b_packed.chunks_exact_mut(n).enumerate() {
            for (j, o) in packed_row.iter_mut().enumerate() {
                *o = bt[j * k + kk];
            }
        }
        matmul_fast_into(a, b_packed, out, m, k, n, None, false);
    });
}

/// Fast tier: `out = Aᵀ·B` with `a: [r, m]` and `b: [r, n]` — the Dense
/// backward's `dW = xᵀ·g` shape, reduction over the shared row index `r`.
/// `out` must be zeroed.
///
/// Like [`matmul_transposed_fast_into`], this repacks the strided operand
/// (`a` read column-wise) into row-major `[m, r]` once and reuses the tiled
/// kernel: the repack is O(r·m) against the product's O(r·m·n), and per
/// output element the reduction still runs over `r` strictly increasing, so
/// the bits match the scalar tier's materialize-then-multiply path exactly.
pub(crate) fn tr_matmul_fast_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    r: usize,
    m: usize,
    n: usize,
) {
    if r == 0 {
        return;
    }
    crate::parallel::scratch::with_f32s(m * r, |a_packed| {
        for (i, packed_row) in a_packed.chunks_exact_mut(r).enumerate() {
            for (rr, o) in packed_row.iter_mut().enumerate() {
                *o = a[rr * m + i];
            }
        }
        matmul_fast_into(a_packed, b, out, m, r, n, None, false);
    });
}

// ---------------------------------------------------------------------------
// Fused loss epilogues
// ---------------------------------------------------------------------------
//
// The distillation losses are softmax-dominated once the matmuls run tiled:
// the composed reference computes `softmax` and `log_softmax` as separate
// whole-tensor passes (two row-max folds, two exp sweeps, two extra tensor
// allocations per batch). The fused row kernels below produce the same
// probabilities, log-probabilities, and per-row loss contributions in one
// pass over the logit row.
//
// # Epilogue fusion contract (bit-identity)
//
// Each kernel reproduces the composed `ops::softmax` / `ops::log_softmax`
// arithmetic *operation for operation*:
//
// - the row maximum is the same left-to-right `f32::max` fold;
// - the exponential sweep computes `((z[j] - max) / temperature).exp()` in
//   index order and accumulates the total as the same sequential `+` chain
//   starting from `+0.0` — which is also exactly how `log_softmax` builds
//   its `log_sum` input, so `total` carries the same bits in both roles;
// - probabilities divide each stored exponential by that total, and
//   log-probabilities are `(z[j] - max) / temperature - total.ln()`,
//   matching the composed passes exactly.
//
// Per-row loss contributions are returned to the caller, which accumulates
// them over rows in the same sequential order as the composed loss loop.
// IEEE 754 arithmetic is deterministic, so equality of operation sequences
// is equality of bits; the proptest suite in `tests/properties.rs` checks
// this against the composed reference on adversarial inputs (NaN, ±∞,
// duplicated logits).
//
// One carve-out: when a row contains non-finite logits (a `+∞` entry makes
// `∞ − ∞` appear in the exponent sweep), both sides poison the same lanes
// with NaN, but the *sign/payload* of a freshly generated NaN is not pinned
// by IEEE 754 — LLVM is free to materialise the platform default QNaN or a
// propagated operand NaN depending on how the surrounding code inlines. The
// contract is therefore "identical bits, except NaNs match any NaN". Real
// logits are finite, so this carve-out never applies on the training path.

/// Fused softmax + cross-entropy epilogue over one logit row: writes
/// `softmax(z / temperature)` into `probs` and returns the row's
/// log-likelihood `log p[label]` — bit-identical to composing
/// [`crate::ops::softmax`] and [`crate::ops::log_softmax`] and reading
/// them separately (see the fusion contract above).
///
/// # Panics
///
/// Panics if `temperature <= 0`, `label` is out of range, or the slices
/// disagree in length.
pub fn softmax_xent_row(z: &[f32], temperature: f32, label: usize, probs: &mut [f32]) -> f32 {
    assert!(temperature > 0.0, "temperature must be positive");
    assert_eq!(z.len(), probs.len(), "row width mismatch");
    assert!(label < z.len(), "label {label} out of range");
    let max = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut total = 0.0f32;
    for (p, &v) in probs.iter_mut().zip(z) {
        *p = ((v - max) / temperature).exp();
        total += *p;
    }
    let log_sum = total.ln();
    for p in probs.iter_mut() {
        *p /= total;
    }
    (z[label] - max) / temperature - log_sum
}

/// Fused softmax + KL epilogue over one logit row: writes the student
/// probabilities `softmax(z / temperature)` into `probs` and returns the
/// row's KL contribution `Σ_j p_j · (ln p_j − log q_j)` over teacher
/// entries with `p_j > 0` — bit-identical to the composed
/// `softmax`/`log_softmax` reference (see the fusion contract above).
///
/// # Panics
///
/// Panics if `temperature <= 0` or the slices disagree in length.
pub fn softmax_kl_row(z: &[f32], teacher: &[f32], temperature: f32, probs: &mut [f32]) -> f32 {
    assert!(temperature > 0.0, "temperature must be positive");
    assert_eq!(z.len(), probs.len(), "row width mismatch");
    assert_eq!(z.len(), teacher.len(), "teacher width mismatch");
    let max = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut total = 0.0f32;
    for (p, &v) in probs.iter_mut().zip(z) {
        *p = ((v - max) / temperature).exp();
        total += *p;
    }
    let log_sum = total.ln();
    let mut row_loss = 0.0f32;
    for (j, &p) in teacher.iter().enumerate() {
        if p > 0.0 {
            let log_q = (z[j] - max) / temperature - log_sum;
            row_loss += p * (p.ln() - log_q);
        }
    }
    for p in probs.iter_mut() {
        *p /= total;
    }
    row_loss
}

/// Combined KL + hard-label cross-entropy epilogue over one logit row —
/// the Eq. 11/15 shape, where the same logits feed a temperature-`T` KL
/// term and a temperature-1 CE term. Shares the row-max fold between the
/// two softmax families; each half is bit-identical to its standalone
/// fused kernel (and hence to the composed reference).
///
/// Writes `softmax(z / temperature)` into `kl_probs` and `softmax(z)` into
/// `ce_probs`; returns `(kl_row_loss, log p[label])`.
///
/// # Panics
///
/// Panics if `temperature <= 0`, `label` is out of range, or any slice
/// disagrees in length.
pub fn softmax_kl_xent_row(
    z: &[f32],
    teacher: &[f32],
    temperature: f32,
    label: usize,
    kl_probs: &mut [f32],
    ce_probs: &mut [f32],
) -> (f32, f32) {
    assert!(temperature > 0.0, "temperature must be positive");
    assert_eq!(z.len(), kl_probs.len(), "row width mismatch");
    assert_eq!(z.len(), ce_probs.len(), "row width mismatch");
    assert_eq!(z.len(), teacher.len(), "teacher width mismatch");
    assert!(label < z.len(), "label {label} out of range");
    let max = z.iter().copied().fold(f32::NEG_INFINITY, f32::max);

    let mut kl_total = 0.0f32;
    for (p, &v) in kl_probs.iter_mut().zip(z) {
        *p = ((v - max) / temperature).exp();
        kl_total += *p;
    }
    let kl_log_sum = kl_total.ln();
    let mut kl_loss = 0.0f32;
    for (j, &p) in teacher.iter().enumerate() {
        if p > 0.0 {
            let log_q = (z[j] - max) / temperature - kl_log_sum;
            kl_loss += p * (p.ln() - log_q);
        }
    }
    for p in kl_probs.iter_mut() {
        *p /= kl_total;
    }

    let mut ce_total = 0.0f32;
    for (p, &v) in ce_probs.iter_mut().zip(z) {
        *p = ((v - max) / 1.0).exp();
        ce_total += *p;
    }
    let log_p_label = (z[label] - max) / 1.0 - ce_total.ln();
    for p in ce_probs.iter_mut() {
        *p /= ce_total;
    }

    (kl_loss, log_p_label)
}
