//! Property-based tests for tensor algebra, softmax, losses, the fused
//! loss epilogues, the execution-plan scheduler, and the parameter-vector
//! codec.

use fedpkd_rng::Rng;
use fedpkd_tensor::kernels::{softmax_kl_row, softmax_kl_xent_row, softmax_xent_row};
use fedpkd_tensor::loss::{distill_kl_ce, CrossEntropy, DistillKl, Mse};
use fedpkd_tensor::models::{DepthTier, ModelSpec};
use fedpkd_tensor::ops::{log_softmax, row_entropy, sharpen, softmax};
use fedpkd_tensor::parallel::{dispatch_stealing, dispatch_stealing_scheduled};
use fedpkd_tensor::plan::grouped_schedule;
use fedpkd_tensor::serialize::{load_param_vector, param_vector};
use fedpkd_tensor::{KernelMode, Tensor};
use proptest::prelude::*;

/// Strategy: an arbitrary small classifier architecture.
fn model_spec() -> impl Strategy<Value = ModelSpec> {
    (0usize..2, 1usize..=8, 2usize..=6).prop_map(|(tier, input_dim, num_classes)| {
        ModelSpec::ResMlp {
            input_dim,
            num_classes,
            tier: [DepthTier::T11, DepthTier::T20][tier],
        }
    })
}

/// Strategy: a small rank-2 tensor with finite values.
fn matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]).unwrap())
    })
}

/// Strategy: a kernel-stressing dimension — 1, small, and the register-tile
/// boundaries (4 rows × 16 columns) ± 1.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        Just(2),
        Just(3),
        Just(4),
        Just(5),
        Just(15),
        Just(16),
        Just(17),
        Just(31),
        Just(33),
        Just(63),
        Just(65),
    ]
}

/// Strategy: an `[r, c]` tensor where roughly half the entries are exact
/// zeros (exercising the kernels' zero-skip path).
fn sparse(r: usize, c: usize) -> impl Strategy<Value = Tensor> {
    (
        prop::collection::vec(-4.0f32..4.0, r * c),
        prop::collection::vec(any::<bool>(), r * c),
    )
        .prop_map(move |(data, mask)| {
            let vals: Vec<f32> = data
                .iter()
                .zip(&mask)
                .map(|(&v, &z)| if z { 0.0 } else { v })
                .collect();
            Tensor::from_vec(vals, &[r, c]).unwrap()
        })
}

/// Strategy: a compatible `(A[m,k], B[k,n])` pair for `A · B`.
fn matmul_case() -> impl Strategy<Value = (Tensor, Tensor)> {
    (dim(), dim(), dim()).prop_flat_map(|(m, k, n)| (sparse(m, k), sparse(k, n)))
}

/// Strategy: a compatible `(A[m,k], Bᵀ[n,k])` pair for `A · Bᵀ`.
fn transposed_case() -> impl Strategy<Value = (Tensor, Tensor)> {
    (dim(), dim(), dim()).prop_flat_map(|(m, k, n)| (sparse(m, k), sparse(n, k)))
}

/// Strategy: a compatible `(A[r,m], B[r,n])` pair for `Aᵀ · B`.
fn tr_case() -> impl Strategy<Value = (Tensor, Tensor)> {
    (dim(), dim(), dim()).prop_flat_map(|(r, m, n)| (sparse(r, m), sparse(r, n)))
}

proptest! {
    /// Addition is commutative and subtraction is its inverse.
    #[test]
    fn add_commutes_and_sub_inverts(t in matrix(6, 6)) {
        let u = t.map(|x| x * 0.5 + 1.0);
        let ab = t.add(&u).unwrap();
        let ba = u.add(&t).unwrap();
        prop_assert_eq!(ab.clone(), ba);
        let back = ab.sub(&u).unwrap();
        for (x, y) in back.as_slice().iter().zip(t.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Transposing twice is the identity.
    #[test]
    fn transpose_is_involution(t in matrix(8, 8)) {
        prop_assert_eq!(t.transpose().unwrap().transpose().unwrap(), t);
    }

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn matmul_transpose_identity(a in matrix(5, 4), b_data in prop::collection::vec(-5.0f32..5.0, 4 * 3)) {
        let a = a.reshape(&[a.rows(), a.cols()]).unwrap();
        prop_assume!(a.cols() == 4);
        let b = Tensor::from_vec(b_data, &[4, 3]).unwrap();
        let left = a.matmul(&b).unwrap().transpose().unwrap();
        let right = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Softmax rows are probability distributions and preserve the argmax.
    #[test]
    fn softmax_is_a_distribution(t in matrix(6, 8), temp in 0.2f32..5.0) {
        let p = softmax(&t, temp);
        prop_assert!(p.all_finite());
        for r in 0..p.rows() {
            let total: f32 = p.row(r).iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| v >= 0.0));
        }
        prop_assert_eq!(p.argmax_rows(), t.argmax_rows());
    }

    /// log-softmax equals the log of softmax.
    #[test]
    fn log_softmax_consistency(t in matrix(4, 6), temp in 0.5f32..3.0) {
        let a = log_softmax(&t, temp);
        let b = softmax(&t, temp);
        for (lx, x) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((lx.exp() - x).abs() < 1e-4);
        }
    }

    /// Entropy is non-negative and bounded by ln(k) for probability rows.
    #[test]
    fn entropy_bounds(t in matrix(5, 7)) {
        let p = softmax(&t, 1.0);
        let k = p.cols() as f32;
        for h in row_entropy(&p) {
            prop_assert!(h >= -1e-6);
            prop_assert!(h <= k.ln() + 1e-4);
        }
    }

    /// Sharpening with T < 1 never increases a row's entropy.
    #[test]
    fn sharpening_reduces_entropy(t in matrix(5, 6), temp in 0.1f32..1.0) {
        let p = softmax(&t, 1.0);
        let s = sharpen(&p, temp);
        let before = row_entropy(&p);
        let after = row_entropy(&s);
        for (&b, &a) in before.iter().zip(&after) {
            prop_assert!(a <= b + 1e-5, "entropy rose: {b} → {a}");
        }
    }

    /// Cross-entropy is non-negative and at least the log-loss bound.
    #[test]
    fn cross_entropy_nonnegative(t in matrix(5, 6), label_seed in any::<u64>()) {
        let labels: Vec<usize> = (0..t.rows())
            .map(|r| ((label_seed as usize).wrapping_add(r * 7)) % t.cols())
            .collect();
        let (loss, grad) = CrossEntropy::new().loss_and_grad(&t, &labels);
        prop_assert!(loss >= 0.0);
        prop_assert!(grad.all_finite());
        // Gradient rows sum to ~0 (softmax minus one-hot).
        for r in 0..grad.rows() {
            prop_assert!(grad.row(r).iter().sum::<f32>().abs() < 1e-4);
        }
    }

    /// KL distillation is non-negative and zero iff student matches teacher.
    #[test]
    fn kl_nonnegative(student in matrix(4, 5), temp in 0.5f32..4.0) {
        let teacher = softmax(&student.map(|x| x + 0.5), temp);
        let (loss, _) = DistillKl::new(temp).loss_and_grad(&student, &teacher);
        prop_assert!(loss >= -1e-5, "KL must be non-negative, got {loss}");
        let self_teacher = softmax(&student, temp);
        let (self_loss, _) = DistillKl::new(temp).loss_and_grad(&student, &self_teacher);
        prop_assert!(self_loss.abs() < 1e-4);
    }

    /// MSE is symmetric, non-negative, and zero only at equality.
    #[test]
    fn mse_axioms(a in matrix(4, 4)) {
        let b = a.map(|x| x + 0.25);
        let (ab, _) = Mse::new().loss_and_grad(&a, &b);
        let (ba, _) = Mse::new().loss_and_grad(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!(ab > 0.0);
        let (self_loss, _) = Mse::new().loss_and_grad(&a, &a);
        prop_assert_eq!(self_loss, 0.0);
    }

    /// Saving a model's parameters and loading them into a fresh model of
    /// the same architecture reproduces them bit-for-bit.
    #[test]
    fn param_vector_round_trips(spec in model_spec(), seed in any::<u64>(), reseed in any::<u64>()) {
        let m = spec.build(&mut Rng::seed_from_u64(seed));
        let saved = param_vector(&m);
        // A differently initialized model with the same architecture.
        let mut other = spec.build(&mut Rng::seed_from_u64(reseed));
        load_param_vector(&mut other, &saved).unwrap();
        prop_assert_eq!(param_vector(&other), saved);
    }

    /// A length-mismatched load fails and leaves the model untouched.
    #[test]
    fn bad_param_vector_leaves_model_untouched(
        spec in model_spec(),
        seed in any::<u64>(),
        delta in (0usize..3).prop_map(|i| [-1i64, 1, 17][i]),
    ) {
        let mut m = spec.build(&mut Rng::seed_from_u64(seed));
        let before = param_vector(&m);
        let bad_len = (before.len() as i64 + delta).max(0) as usize;
        let bad = vec![0.125f32; bad_len];
        prop_assert!(load_param_vector(&mut m, &bad).is_err());
        prop_assert_eq!(param_vector(&m), before);
    }

    /// The tiled/packed fast matmul is bit-identical to the scalar
    /// reference across awkward shapes (1, tile boundaries ±1) and sparse
    /// inputs that exercise the zero-skip path.
    #[test]
    fn fast_matmul_is_bit_identical_to_scalar((a, b) in matmul_case()) {
        let fast = a.matmul(&b).unwrap();
        let scalar = a.matmul_scalar(&b).unwrap();
        prop_assert_eq!(fast.shape(), scalar.shape());
        for (x, y) in fast.as_slice().iter().zip(scalar.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// `A · Bᵀ` via the packed transposed kernel equals materializing the
    /// transpose and running the scalar reference — bit for bit.
    #[test]
    fn matmul_transposed_is_bit_identical_to_scalar((a, bt) in transposed_case()) {
        let fast = a.matmul_transposed(&bt).unwrap();
        let scalar = a.matmul_scalar(&bt.transpose().unwrap()).unwrap();
        prop_assert_eq!(fast.shape(), scalar.shape());
        for (x, y) in fast.as_slice().iter().zip(scalar.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// `Aᵀ · B` via the transposed-reduction kernel equals materializing
    /// the transpose and running the scalar reference — bit for bit.
    #[test]
    fn tr_matmul_is_bit_identical_to_scalar((a, b) in tr_case()) {
        let fast = a.tr_matmul(&b).unwrap();
        let scalar = a.transpose().unwrap().matmul_scalar(&b).unwrap();
        prop_assert_eq!(fast.shape(), scalar.shape());
        for (x, y) in fast.as_slice().iter().zip(scalar.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The fused bias(+ReLU) epilogue equals the unfused
    /// matmul → bias sweep → ReLU sweep composition — bit for bit.
    #[test]
    fn fused_bias_relu_is_bit_identical_to_composition(
        (a, b) in matmul_case(),
        relu in any::<bool>(),
    ) {
        let bias_vals: Vec<f32> = (0..b.cols()).map(|j| (j as f32) * 0.35 - 1.0).collect();
        let bias = Tensor::from_vec(bias_vals.clone(), &[b.cols()]).unwrap();
        let fused = a.matmul_bias(&b, &bias, relu).unwrap();
        let mut expect = a.matmul_scalar(&b).unwrap();
        for r in 0..expect.rows() {
            for (o, &bv) in expect.row_mut(r).iter_mut().zip(&bias_vals) {
                *o += bv;
                if relu {
                    *o = o.max(0.0);
                }
            }
        }
        for (x, y) in fused.as_slice().iter().zip(expect.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// select_rows picks exactly the requested rows.
    #[test]
    fn select_rows_semantics(t in matrix(8, 4), pick_seed in any::<u64>()) {
        let indices: Vec<usize> = (0..t.rows())
            .filter(|i| (pick_seed >> (i % 64)) & 1 == 1)
            .collect();
        let sub = t.select_rows(&indices).unwrap();
        prop_assert_eq!(sub.rows(), indices.len());
        for (out_row, &src) in indices.iter().enumerate() {
            prop_assert_eq!(sub.row(out_row), t.row(src));
        }
    }
}

/// The row-parallel dispatch (engaged above ~4M multiply-adds and 128 rows)
/// is bit-identical to the scalar reference no matter how the row chunks
/// land on threads.
#[test]
fn row_parallel_matmul_is_bit_identical_to_scalar() {
    let mut rng = Rng::seed_from_u64(42);
    let (m, k, n) = (2048, 48, 48); // m·k·n = 4.7M > the parallel threshold
    let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, &mut rng);
    let fast = a.matmul(&b).unwrap();
    let scalar = a.matmul_scalar(&b).unwrap();
    assert_eq!(fast.shape(), scalar.shape());
    for (x, y) in fast.as_slice().iter().zip(scalar.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    let bias = Tensor::rand_uniform(&[n], -1.0, 1.0, &mut rng);
    let fused = a.matmul_bias(&b, &bias, true).unwrap();
    let mut expect = scalar;
    for r in 0..expect.rows() {
        for (o, &bv) in expect.row_mut(r).iter_mut().zip(bias.as_slice()) {
            *o = (*o + bv).max(0.0);
        }
    }
    for (x, y) in fused.as_slice().iter().zip(expect.as_slice()) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// Strategy: one row of logits salted with adversarial values — NaN, ±∞,
/// signed zeros, and repeated constants (duplicates) — the inputs where a
/// fused kernel could legally diverge from the composition if it reordered
/// a single operation.
fn adversarial_row(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    let cell = prop_oneof![
        -20.0f32..20.0,
        -20.0f32..20.0,
        -20.0f32..20.0,
        -20.0f32..20.0,
        Just(f32::NAN),
        Just(f32::INFINITY),
        Just(f32::NEG_INFINITY),
        Just(0.0f32),
        Just(-0.0f32),
        Just(7.5f32),
    ];
    prop::collection::vec(cell, 1..=max_len)
}

/// Bit equality, except that two NaNs always match. When a row contains
/// non-finite logits both the fused kernel and the composed reference
/// poison the same lanes with NaN, but the *sign/payload* of a freshly
/// generated NaN (e.g. `∞ − ∞`) is codegen-dependent — inlining the
/// composed ops can flip it — so NaN bits are outside the fusion contract.
fn bits_match(x: f32, y: f32) -> bool {
    x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
}

proptest! {
    /// The fused softmax+cross-entropy row kernel reproduces the composed
    /// `ops::softmax` / `ops::log_softmax` reference bit for bit — probs
    /// and loss — including on NaN/±∞/duplicate inputs (where both sides
    /// must propagate the same bits through the same operation order).
    #[test]
    fn fused_softmax_xent_matches_composition(
        z in adversarial_row(12),
        temp in 0.25f32..4.0,
        label_seed in any::<usize>(),
    ) {
        let label = label_seed % z.len();
        let t = Tensor::from_vec(z.clone(), &[1, z.len()]).unwrap();
        let probs_ref = softmax(&t, temp);
        let logp_ref = log_softmax(&t, temp);
        let mut probs = vec![0.0f32; z.len()];
        let loss = softmax_xent_row(&z, temp, label, &mut probs);
        prop_assert!(bits_match(loss, logp_ref.row(0)[label]));
        for (x, y) in probs.iter().zip(probs_ref.row(0)) {
            prop_assert!(bits_match(*x, *y));
        }
    }

    /// The fused softmax+KL row kernel reproduces the composed
    /// softmax/log-softmax + per-row KL fold — bit for bit, with raw
    /// adversarial teacher entries (non-positive and NaN teacher mass is
    /// skipped by the same `p > 0` guard on both sides).
    #[test]
    fn fused_softmax_kl_matches_composition(
        z in adversarial_row(10),
        teacher_raw in adversarial_row(10),
        temp in 0.25f32..4.0,
    ) {
        let n = z.len().min(teacher_raw.len());
        let z = &z[..n];
        let teacher = &teacher_raw[..n];
        let t = Tensor::from_vec(z.to_vec(), &[1, n]).unwrap();
        let probs_ref = softmax(&t, temp);
        let logq_ref = log_softmax(&t, temp);
        let mut row_loss_ref = 0.0f32;
        for (j, &p) in teacher.iter().enumerate() {
            if p > 0.0 {
                row_loss_ref += p * (p.ln() - logq_ref.row(0)[j]);
            }
        }
        let mut probs = vec![0.0f32; n];
        let loss = softmax_kl_row(z, teacher, temp, &mut probs);
        prop_assert!(bits_match(loss, row_loss_ref));
        for (x, y) in probs.iter().zip(probs_ref.row(0)) {
            prop_assert!(bits_match(*x, *y));
        }
    }

    /// The combined KL+CE kernel (one shared max fold) equals running the
    /// two single-loss kernels — bit for bit on losses and both prob
    /// buffers.
    #[test]
    fn fused_kl_xent_matches_single_kernels(
        z in adversarial_row(10),
        teacher_raw in adversarial_row(10),
        temp in 0.25f32..4.0,
        label_seed in any::<usize>(),
    ) {
        let n = z.len().min(teacher_raw.len());
        let z = &z[..n];
        let teacher = &teacher_raw[..n];
        let label = label_seed % n;
        let mut kl_probs = vec![0.0f32; n];
        let mut ce_probs = vec![0.0f32; n];
        let (kl, logp) = softmax_kl_xent_row(z, teacher, temp, label, &mut kl_probs, &mut ce_probs);
        let mut kl_ref = vec![0.0f32; n];
        let kl_loss_ref = softmax_kl_row(z, teacher, temp, &mut kl_ref);
        let mut ce_ref = vec![0.0f32; n];
        let logp_ref = softmax_xent_row(z, 1.0, label, &mut ce_ref);
        prop_assert!(bits_match(kl, kl_loss_ref));
        prop_assert!(bits_match(logp, logp_ref));
        for (x, y) in kl_probs.iter().zip(&kl_ref) {
            prop_assert!(bits_match(*x, *y));
        }
        for (x, y) in ce_probs.iter().zip(&ce_ref) {
            prop_assert!(bits_match(*x, *y));
        }
    }

    /// The loss layer's two kernel tiers agree bit for bit — CrossEntropy,
    /// DistillKl, and the combined `distill_kl_ce` entry all produce the
    /// same losses and gradients under `Scalar` and `Fast`, and the
    /// combined entry equals the two separate losses within each tier.
    #[test]
    fn loss_tiers_are_bit_identical(
        student in matrix(6, 8),
        label_seed in any::<u64>(),
        temp in 0.5f32..4.0,
    ) {
        let teacher = softmax(&student.map(|x| x * 0.7 + 0.3), temp);
        let labels: Vec<usize> = (0..student.rows())
            .map(|r| (label_seed as usize).wrapping_add(r * 13) % student.cols())
            .collect();
        let kl = DistillKl::new(temp);
        let run = |mode: KernelMode| {
            let _tier = mode.scoped();
            let ce_out = CrossEntropy::new().loss_and_grad(&student, &labels);
            let kl_out = kl.loss_and_grad(&student, &teacher);
            let combined = distill_kl_ce(&kl, &student, &teacher, &labels);
            (ce_out, kl_out, combined)
        };
        let s = run(KernelMode::Scalar);
        let f = run(KernelMode::Fast);
        let bits = |a: &Tensor, b: &Tensor| -> Result<(), TestCaseError> {
            prop_assert_eq!(a.shape(), b.shape());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
            Ok(())
        };
        // Tier equality per entry point.
        prop_assert_eq!(s.0.0.to_bits(), f.0.0.to_bits());
        bits(&s.0.1, &f.0.1)?;
        prop_assert_eq!(s.1.0.to_bits(), f.1.0.to_bits());
        bits(&s.1.1, &f.1.1)?;
        prop_assert_eq!((s.2.0.0).to_bits(), (f.2.0.0).to_bits());
        bits(&s.2.0.1, &f.2.0.1)?;
        prop_assert_eq!((s.2.1.0).to_bits(), (f.2.1.0).to_bits());
        bits(&s.2.1.1, &f.2.1.1)?;
        // The combined entry is the two separate losses, within each tier.
        for out in [&s, &f] {
            prop_assert_eq!((out.2.1.0).to_bits(), (out.0.0).to_bits());
            bits(&out.2.1.1, &out.0.1)?;
            prop_assert_eq!((out.2.0.0).to_bits(), (out.1.0).to_bits());
            bits(&out.2.0.1, &out.1.1)?;
        }
    }

    /// Scheduled dispatch — worker queues seeded in grouped order — commits
    /// the same `(index, result)` sequence as the identity-seeded dispatch,
    /// in strictly ascending item order, for every worker count.
    #[test]
    fn scheduled_dispatch_is_order_invariant(
        keys in prop::collection::vec(0u64..4, 1..40),
        workers in 1usize..8,
    ) {
        let items: Vec<usize> = (0..keys.len()).collect();
        let schedule = grouped_schedule(&keys);
        let task = |_w: usize, i: usize| i * 3 + 1;
        let mut plain = Vec::new();
        dispatch_stealing(items.clone(), workers, task, |i, out| plain.push((i, out)));
        let mut grouped = Vec::new();
        dispatch_stealing_scheduled(items, &schedule, workers, task, |i, out| {
            grouped.push((i, out));
        });
        prop_assert!(grouped.windows(2).all(|w| w[0].0 < w[1].0));
        prop_assert_eq!(plain, grouped);
    }
}

/// Zero-row operands are legal in every kernel and produce empty outputs.
#[test]
fn empty_operands_are_supported() {
    let a = Tensor::zeros(&[0, 7]);
    let b = Tensor::zeros(&[7, 3]);
    assert_eq!(a.matmul(&b).unwrap().shape(), &[0, 3]);
    assert_eq!(a.matmul_scalar(&b).unwrap().shape(), &[0, 3]);
    let bt = Tensor::zeros(&[3, 7]);
    assert_eq!(a.matmul_transposed(&bt).unwrap().shape(), &[0, 3]);
    let ta = Tensor::zeros(&[0, 4]);
    let tb = Tensor::zeros(&[0, 5]);
    assert_eq!(ta.tr_matmul(&tb).unwrap().shape(), &[4, 5]);
}
