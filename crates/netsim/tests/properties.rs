//! Property-based tests: the wire codec round-trips arbitrary messages and
//! `encoded_len` always matches the real encoding.

use fedpkd_netsim::{Message, PrototypeEntry, Wire};
use proptest::prelude::*;

fn arb_prototype_entry() -> impl Strategy<Value = PrototypeEntry> {
    (
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(-1e6f32..1e6, 0..64),
    )
        .prop_map(|(class, count, vector)| PrototypeEntry {
            class,
            count,
            vector,
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        prop::collection::vec(-1e6f32..1e6, 0..256)
            .prop_map(|params| Message::ModelUpdate { params }),
        (
            prop::collection::vec(any::<u32>(), 0..64),
            1u32..200,
            prop::collection::vec(-1e3f32..1e3, 0..128),
        )
            .prop_map(|(sample_ids, num_classes, values)| Message::Logits {
                sample_ids,
                num_classes,
                values,
            }),
        prop::collection::vec(arb_prototype_entry(), 0..8)
            .prop_map(|entries| Message::Prototypes { entries }),
        prop::collection::vec(any::<u32>(), 0..128)
            .prop_map(|ids| Message::SampleSelection { ids }),
    ]
}

proptest! {
    /// Encode → decode is the identity, consumes the whole buffer, and
    /// `encoded_len` predicts the byte count exactly.
    #[test]
    fn round_trip(msg in arb_message()) {
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.encoded_len());
        let mut slice = bytes.as_slice();
        let decoded = Message::decode(&mut slice).unwrap();
        prop_assert_eq!(decoded, msg);
        prop_assert!(slice.is_empty());
    }

    /// Truncating any encoding produces a decode error, never a panic or a
    /// silently wrong value.
    #[test]
    fn truncation_is_detected(msg in arb_message(), cut in 1usize..64) {
        let bytes = msg.to_bytes();
        prop_assume!(cut < bytes.len());
        let truncated = &bytes[..bytes.len() - cut];
        let mut slice = truncated;
        // Either a clean error, or (for container messages) a shorter valid
        // prefix decode that cannot equal the original.
        match Message::decode(&mut slice) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, msg),
        }
    }

    /// Two messages concatenated decode back as two messages (framing is
    /// self-delimiting).
    #[test]
    fn sequential_framing(a in arb_message(), b in arb_message()) {
        let mut buf = a.to_bytes();
        buf.extend(b.to_bytes());
        let mut slice = buf.as_slice();
        let da = Message::decode(&mut slice).unwrap();
        let db = Message::decode(&mut slice).unwrap();
        prop_assert_eq!(da, a);
        prop_assert_eq!(db, b);
        prop_assert!(slice.is_empty());
    }

    /// Garbage bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut slice = bytes.as_slice();
        let _ = Message::decode(&mut slice);
    }
}
