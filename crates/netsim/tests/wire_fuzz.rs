//! Hostile-bytes fuzzing of every `Wire` decoder.
//!
//! The serving layer (`fedpkd-serve`) feeds socket bytes straight into
//! these decoders, so they are the trust boundary of the real transport:
//! whatever an adversarial client puts on the wire, decoding must return a
//! typed [`WireError`] or a value — never panic, and never allocate more
//! than the input it was handed (the element caps bound every length
//! field, and every collection read checks the remaining buffer *before*
//! materializing elements).
//!
//! Three hostile shapes are fuzzed for each `Wire` impl:
//!
//! - **truncated** — a valid encoding cut at every possible length,
//! - **bit-flipped** — a valid encoding with one corrupted byte (length
//!   fields, tags, and values all get hit across cases),
//! - **garbage** — arbitrary byte soup, including buffers opening with
//!   absurd length claims.

use fedpkd_netsim::{Message, PrototypeEntry, QuantizedLogits, Wire, WireError};
use proptest::prelude::*;

fn arb_prototype_entry() -> impl Strategy<Value = PrototypeEntry> {
    (
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(-1e6f32..1e6, 0..32),
    )
        .prop_map(|(class, count, vector)| PrototypeEntry {
            class,
            count,
            vector,
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        prop::collection::vec(-1e6f32..1e6, 0..64)
            .prop_map(|params| Message::ModelUpdate { params }),
        (
            prop::collection::vec(any::<u32>(), 0..32),
            1u32..64,
            prop::collection::vec(-1e3f32..1e3, 0..64),
        )
            .prop_map(|(sample_ids, num_classes, values)| Message::Logits {
                sample_ids,
                num_classes,
                values,
            }),
        prop::collection::vec(arb_prototype_entry(), 0..6)
            .prop_map(|entries| Message::Prototypes { entries }),
        prop::collection::vec(any::<u32>(), 0..64).prop_map(|ids| Message::SampleSelection { ids }),
    ]
}

fn arb_quantized() -> impl Strategy<Value = QuantizedLogits> {
    (
        prop::collection::vec(any::<u32>(), 1..16),
        1u32..8,
        -1e3f32..1e3,
    )
        .prop_flat_map(|(ids, classes, base)| {
            let n = ids.len() * classes as usize;
            prop::collection::vec(-50.0f32..50.0, n..=n).prop_map(move |values| {
                let shifted: Vec<f32> = values.iter().map(|v| v + base).collect();
                QuantizedLogits::from_values(&ids, classes, &shifted)
                    .expect("finite inputs quantize")
            })
        })
}

/// Decoding must yield a typed outcome — `Ok` or a `WireError` — and on
/// `Ok` must never have consumed more bytes than the buffer held. The
/// closure runs the decode; reaching the end of this function *is* the
/// assertion that nothing panicked.
fn decode_is_total<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut slice = bytes;
    let out = T::decode(&mut slice);
    assert!(slice.len() <= bytes.len());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every strict prefix of a valid message decodes to a typed error or
    /// (if a shorter valid message happens to be a prefix) a value —
    /// never a panic. The full encoding always decodes back.
    #[test]
    fn truncated_messages_never_panic(msg in arb_message(), cut in 0usize..64) {
        let bytes = msg.to_bytes();
        let cut = cut.min(bytes.len().saturating_sub(1));
        let _ = decode_is_total::<Message>(&bytes[..cut]);
        prop_assert_eq!(decode_is_total::<Message>(&bytes).unwrap(), msg);
    }

    /// One flipped byte anywhere — tag, length field, or value — yields a
    /// typed outcome. If the flip lands in a length field the decoder must
    /// not over-allocate: every collection read checks the remaining
    /// buffer before materializing, so decode memory stays O(input).
    #[test]
    fn bit_flipped_messages_never_panic(
        msg in arb_message(),
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut bytes = msg.to_bytes();
        if bytes.is_empty() {
            return Ok(());
        }
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        let _ = decode_is_total::<Message>(&bytes);
    }

    /// Arbitrary byte soup is a typed outcome for every decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_is_total::<Message>(&bytes);
        let _ = decode_is_total::<PrototypeEntry>(&bytes);
        let _ = decode_is_total::<QuantizedLogits>(&bytes);
    }

    /// Truncations and bit-flips of quantized payloads never panic, and
    /// the untouched encoding round-trips.
    #[test]
    fn quantized_hostile_bytes_never_panic(
        q in arb_quantized(),
        cut in 0usize..64,
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let bytes = q.to_bytes();
        prop_assert_eq!(bytes.len(), q.encoded_len());
        let cut = cut.min(bytes.len().saturating_sub(1));
        let _ = decode_is_total::<QuantizedLogits>(&bytes[..cut]);
        let mut flipped = bytes.clone();
        let pos = pos % flipped.len();
        flipped[pos] ^= 1 << bit;
        let _ = decode_is_total::<QuantizedLogits>(&flipped);
        prop_assert_eq!(decode_is_total::<QuantizedLogits>(&bytes).unwrap(), q);
    }

    /// Truncations and bit-flips of a bare prototype entry never panic.
    #[test]
    fn prototype_entry_hostile_bytes_never_panic(
        entry in arb_prototype_entry(),
        cut in 0usize..32,
        pos in 0usize..4096,
    ) {
        let bytes = entry.to_bytes();
        let cut = cut.min(bytes.len().saturating_sub(1));
        let _ = decode_is_total::<PrototypeEntry>(&bytes[..cut]);
        let mut flipped = bytes.clone();
        let pos = pos % flipped.len();
        flipped[pos] ^= 0xFF;
        let _ = decode_is_total::<PrototypeEntry>(&flipped);
        prop_assert_eq!(decode_is_total::<PrototypeEntry>(&bytes).unwrap(), entry);
    }
}

/// A length claim past the element cap is rejected before any allocation —
/// the oversized-frame admission path of the serving layer.
#[test]
fn absurd_length_claims_are_capped() {
    for tag in [1u8, 2, 3, 4] {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        // Plenty of trailing bytes so EOF is not what saves us.
        bytes.extend_from_slice(&[0u8; 64]);
        match decode_is_total::<Message>(&bytes) {
            Err(WireError::LengthOverflow(n)) => assert_eq!(n, u64::from(u32::MAX)),
            other => panic!("tag {tag}: expected LengthOverflow, got {other:?}"),
        }
    }
    // Quantized payloads cap their value-byte length the same way.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&0u32.to_le_bytes()); // no sample ids
    bytes.extend_from_slice(&2u32.to_le_bytes()); // num_classes
    bytes.extend_from_slice(&0f32.to_le_bytes()); // min
    bytes.extend_from_slice(&1f32.to_le_bytes()); // scale
    bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd value count
    bytes.extend_from_slice(&[0u8; 64]);
    assert!(matches!(
        decode_is_total::<QuantizedLogits>(&bytes),
        Err(WireError::LengthOverflow(_))
    ));
}

/// A truncated buffer whose *length field* claims more than remains must
/// error without allocating the claimed amount: the decoders check the
/// remaining buffer first, so memory stays bounded by the input size.
#[test]
fn declared_length_beyond_buffer_is_eof_not_allocation() {
    // Claims 2^27 f32s (512 MiB) but carries 8 bytes.
    let mut bytes = vec![1u8]; // ModelUpdate tag
    bytes.extend_from_slice(&((1u32 << 27).to_le_bytes()));
    bytes.extend_from_slice(&[0u8; 8]);
    assert_eq!(
        decode_is_total::<Message>(&bytes),
        Err(WireError::UnexpectedEof)
    );
}
