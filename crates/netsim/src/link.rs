//! Link timing model.

/// A point-to-point link characterized by bandwidth and propagation latency.
///
/// Used to convert measured byte counts into transfer times, e.g. for
/// straggler analysis in heterogeneous deployments.
///
/// # Examples
///
/// ```
/// use fedpkd_netsim::LinkModel;
///
/// let lte = LinkModel::new(1_250_000.0, 0.05); // 10 Mbit/s, 50 ms RTT leg
/// let t = lte.transfer_time(1_250_000);
/// assert!((t - 1.05).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    bandwidth_bytes_per_sec: f64,
    latency_sec: f64,
}

impl LinkModel {
    /// Creates a link with the given bandwidth (bytes/second) and one-way
    /// latency (seconds).
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive or the latency is negative.
    pub fn new(bandwidth_bytes_per_sec: f64, latency_sec: f64) -> Self {
        assert!(
            bandwidth_bytes_per_sec > 0.0 && bandwidth_bytes_per_sec.is_finite(),
            "bandwidth must be positive"
        );
        assert!(
            latency_sec >= 0.0 && latency_sec.is_finite(),
            "latency must be non-negative"
        );
        Self {
            bandwidth_bytes_per_sec,
            latency_sec,
        }
    }

    /// A 100 Mbit/s, 5 ms link — a reasonable edge/WiFi default.
    pub fn wifi() -> Self {
        Self::new(12_500_000.0, 0.005)
    }

    /// A 10 Mbit/s, 50 ms link — a constrained cellular uplink.
    pub fn cellular() -> Self {
        Self::new(1_250_000.0, 0.05)
    }

    /// Time in seconds to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_sec + bytes as f64 / self.bandwidth_bytes_per_sec
    }

    /// The same link degraded by `factor` (≥ 1): bandwidth divided and
    /// latency multiplied by it, so every transfer takes at least `factor`
    /// times as long. Models a straggler sharing the medium.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1` or is non-finite.
    pub fn slowed(&self, factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "slowdown factor must be >= 1"
        );
        Self::new(
            self.bandwidth_bytes_per_sec / factor,
            self.latency_sec * factor,
        )
    }

    /// The bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth_bytes_per_sec
    }

    /// The one-way latency in seconds.
    pub fn latency(&self) -> f64 {
        self.latency_sec
    }

    /// Synchronous-round completion time: the slowest client gates the round
    /// (each entry is that client's payload size in bytes).
    pub fn round_time(&self, payload_bytes: &[usize]) -> f64 {
        payload_bytes
            .iter()
            .map(|&b| self.transfer_time(b))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_serialization() {
        let link = LinkModel::new(1000.0, 0.1);
        assert!((link.transfer_time(500) - 0.6).abs() < 1e-12);
        assert!((link.transfer_time(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn round_time_is_straggler_bound() {
        let link = LinkModel::new(1000.0, 0.0);
        let t = link.round_time(&[100, 5000, 200]);
        assert!((t - 5.0).abs() < 1e-12);
        assert_eq!(link.round_time(&[]), 0.0);
    }

    #[test]
    fn slowed_link_scales_both_components() {
        let link = LinkModel::new(1000.0, 0.1);
        let slow = link.slowed(4.0);
        assert!((slow.bandwidth() - 250.0).abs() < 1e-12);
        assert!((slow.latency() - 0.4).abs() < 1e-12);
        assert!((slow.transfer_time(500) - 4.0 * link.transfer_time(500)).abs() < 1e-12);
        assert_eq!(link.slowed(1.0), link);
    }

    #[test]
    #[should_panic(expected = "slowdown factor must be >= 1")]
    fn rejects_sub_unit_slowdown() {
        let _ = LinkModel::wifi().slowed(0.9);
    }

    #[test]
    fn presets_are_ordered() {
        assert!(LinkModel::wifi().bandwidth() > LinkModel::cellular().bandwidth());
        assert!(LinkModel::wifi().latency() < LinkModel::cellular().latency());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = LinkModel::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "latency must be non-negative")]
    fn rejects_negative_latency() {
        let _ = LinkModel::new(1.0, -0.1);
    }
}
