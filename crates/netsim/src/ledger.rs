//! Byte-accurate communication accounting.

use crate::{Message, Wire};

/// Direction of a transfer relative to the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client → server.
    Uplink,
    /// Server → client.
    Downlink,
}

/// One recorded transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Transfer {
    round: usize,
    client: usize,
    direction: Direction,
    bytes: usize,
}

/// One transfer as an owned public record, for checkpointing.
///
/// [`CommLedger::transfers`] exposes the full transfer log in recording
/// order and [`CommLedger::from_transfers`] rebuilds an identical ledger
/// from it, so a ledger can round-trip through any external encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRecord {
    /// Round in which the transfer happened.
    pub round: usize,
    /// Client on the far end of the link.
    pub client: usize,
    /// Direction relative to the server.
    pub direction: Direction,
    /// Exact encoded payload size.
    pub bytes: usize,
}

/// Aggregated traffic of one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundTraffic {
    /// Client → server bytes.
    pub uplink: usize,
    /// Server → client bytes.
    pub downlink: usize,
}

impl RoundTraffic {
    /// Total bytes in both directions.
    pub fn total(&self) -> usize {
        self.uplink + self.downlink
    }
}

/// Records every byte that crosses the simulated network.
///
/// The experiments read this ledger to reproduce the paper's communication
/// metrics: per-round overhead (Fig. 3) and cumulative bytes until a target
/// accuracy (Table I).
///
/// # Examples
///
/// ```
/// use fedpkd_netsim::{CommLedger, Direction, Message};
///
/// let mut ledger = CommLedger::new();
/// ledger.record(0, 0, Direction::Uplink, &Message::SampleSelection { ids: vec![1, 2] });
/// ledger.record(1, 0, Direction::Downlink, &Message::SampleSelection { ids: vec![3] });
/// assert_eq!(ledger.rounds_recorded(), 2);
/// assert!(ledger.cumulative_bytes_through_round(0) < ledger.total_bytes());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommLedger {
    transfers: Vec<Transfer>,
}

impl CommLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the transfer of `message` in `round` for `client`, charging
    /// its exact encoded size.
    pub fn record(&mut self, round: usize, client: usize, direction: Direction, message: &Message) {
        self.record_bytes(round, client, direction, message.encoded_len());
    }

    /// Records a transfer of a known byte size (for payloads not in the
    /// [`Message`] catalog).
    pub fn record_bytes(
        &mut self,
        round: usize,
        client: usize,
        direction: Direction,
        bytes: usize,
    ) {
        self.transfers.push(Transfer {
            round,
            client,
            direction,
            bytes,
        });
    }

    /// Total bytes recorded, both directions.
    pub fn total_bytes(&self) -> usize {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Total bytes in one direction.
    pub fn direction_bytes(&self, direction: Direction) -> usize {
        self.transfers
            .iter()
            .filter(|t| t.direction == direction)
            .map(|t| t.bytes)
            .sum()
    }

    /// Bytes sent and received by one client across all rounds.
    pub fn client_bytes(&self, client: usize) -> usize {
        self.transfers
            .iter()
            .filter(|t| t.client == client)
            .map(|t| t.bytes)
            .sum()
    }

    /// Traffic of a single round.
    pub fn round_traffic(&self, round: usize) -> RoundTraffic {
        let mut traffic = RoundTraffic::default();
        for t in self.transfers.iter().filter(|t| t.round == round) {
            match t.direction {
                Direction::Uplink => traffic.uplink += t.bytes,
                Direction::Downlink => traffic.downlink += t.bytes,
            }
        }
        traffic
    }

    /// Cumulative bytes over rounds `0..=round` (Table I's "communication
    /// overhead used to reach the target accuracy").
    pub fn cumulative_bytes_through_round(&self, round: usize) -> usize {
        self.transfers
            .iter()
            .filter(|t| t.round <= round)
            .map(|t| t.bytes)
            .sum()
    }

    /// Number of distinct rounds with at least one transfer.
    pub fn rounds_recorded(&self) -> usize {
        let mut rounds: Vec<usize> = self.transfers.iter().map(|t| t.round).collect();
        rounds.sort_unstable();
        rounds.dedup();
        rounds.len()
    }

    /// Per-client uplink bytes of one round (for straggler analysis with a
    /// [`crate::LinkModel`]).
    ///
    /// The result has at least `num_clients` entries and grows to cover the
    /// largest client id actually recorded in the round, so no transfer is
    /// ever silently excluded from straggler analysis.
    pub fn round_client_uplinks(&self, round: usize, num_clients: usize) -> Vec<usize> {
        let mut per_client = vec![0usize; num_clients];
        for t in self
            .transfers
            .iter()
            .filter(|t| t.round == round && t.direction == Direction::Uplink)
        {
            if t.client >= per_client.len() {
                per_client.resize(t.client + 1, 0);
            }
            per_client[t.client] += t.bytes;
        }
        per_client
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }

    /// Every recorded transfer, in recording order.
    pub fn transfers(&self) -> impl Iterator<Item = TransferRecord> + '_ {
        self.transfers.iter().map(|t| TransferRecord {
            round: t.round,
            client: t.client,
            direction: t.direction,
            bytes: t.bytes,
        })
    }

    /// Number of recorded transfers.
    pub fn num_transfers(&self) -> usize {
        self.transfers.len()
    }

    /// Rebuilds a ledger from records captured via
    /// [`transfers`](Self::transfers). Order is preserved, so the result
    /// compares equal to the original ledger.
    pub fn from_transfers(records: impl IntoIterator<Item = TransferRecord>) -> Self {
        let mut ledger = Self::new();
        for r in records {
            ledger.record_bytes(r.round, r.client, r.direction, r.bytes);
        }
        ledger
    }
}

/// Converts bytes to the megabytes used in the paper's tables.
pub fn bytes_to_mb(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(n: usize) -> Message {
        Message::ModelUpdate {
            params: vec![0.0; n],
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut ledger = CommLedger::new();
        ledger.record(0, 0, Direction::Uplink, &msg(10));
        ledger.record(0, 1, Direction::Uplink, &msg(10));
        ledger.record(0, 0, Direction::Downlink, &msg(20));
        let one = msg(10).encoded_len();
        let big = msg(20).encoded_len();
        assert_eq!(ledger.total_bytes(), 2 * one + big);
        assert_eq!(ledger.direction_bytes(Direction::Uplink), 2 * one);
        assert_eq!(ledger.direction_bytes(Direction::Downlink), big);
        assert_eq!(ledger.client_bytes(0), one + big);
        assert_eq!(ledger.client_bytes(1), one);
        assert_eq!(ledger.client_bytes(9), 0);
    }

    #[test]
    fn round_traffic_separates_rounds() {
        let mut ledger = CommLedger::new();
        ledger.record(0, 0, Direction::Uplink, &msg(10));
        ledger.record(1, 0, Direction::Uplink, &msg(30));
        let r0 = ledger.round_traffic(0);
        let r1 = ledger.round_traffic(1);
        assert_eq!(r0.uplink, msg(10).encoded_len());
        assert_eq!(r1.uplink, msg(30).encoded_len());
        assert_eq!(r0.downlink, 0);
        assert_eq!(r0.total(), r0.uplink);
        assert_eq!(ledger.rounds_recorded(), 2);
    }

    #[test]
    fn cumulative_bytes_is_monotone() {
        let mut ledger = CommLedger::new();
        for round in 0..5 {
            ledger.record(round, 0, Direction::Uplink, &msg(round + 1));
        }
        let mut prev = 0;
        for round in 0..5 {
            let cum = ledger.cumulative_bytes_through_round(round);
            assert!(cum > prev);
            prev = cum;
        }
        assert_eq!(prev, ledger.total_bytes());
    }

    #[test]
    fn per_client_uplinks() {
        let mut ledger = CommLedger::new();
        ledger.record(2, 0, Direction::Uplink, &msg(1));
        ledger.record(2, 2, Direction::Uplink, &msg(2));
        ledger.record(2, 2, Direction::Downlink, &msg(50));
        let ups = ledger.round_client_uplinks(2, 3);
        assert_eq!(ups[0], msg(1).encoded_len());
        assert_eq!(ups[1], 0);
        assert_eq!(ups[2], msg(2).encoded_len());
    }

    #[test]
    fn per_client_uplinks_grow_past_num_clients() {
        // Transfers from a client id beyond the caller's estimate must show
        // up rather than being silently dropped.
        let mut ledger = CommLedger::new();
        ledger.record(0, 0, Direction::Uplink, &msg(1));
        ledger.record(0, 5, Direction::Uplink, &msg(2));
        let ups = ledger.round_client_uplinks(0, 2);
        assert_eq!(ups.len(), 6);
        assert_eq!(ups[0], msg(1).encoded_len());
        assert_eq!(ups[5], msg(2).encoded_len());
        assert_eq!(ups[1..5].iter().sum::<usize>(), 0);
    }

    #[test]
    fn transfer_records_round_trip() {
        let mut ledger = CommLedger::new();
        ledger.record(0, 0, Direction::Uplink, &msg(3));
        ledger.record(0, 1, Direction::Downlink, &msg(7));
        ledger.record(4, 2, Direction::Uplink, &msg(1));
        assert_eq!(ledger.num_transfers(), 3);
        let rebuilt = CommLedger::from_transfers(ledger.transfers());
        assert_eq!(rebuilt, ledger);
    }

    #[test]
    fn empty_ledger() {
        let ledger = CommLedger::new();
        assert!(ledger.is_empty());
        assert_eq!(ledger.total_bytes(), 0);
        assert_eq!(ledger.rounds_recorded(), 0);
    }

    #[test]
    fn mb_conversion() {
        assert!((bytes_to_mb(1024 * 1024) - 1.0).abs() < 1e-12);
        assert_eq!(bytes_to_mb(0), 0.0);
    }
}
