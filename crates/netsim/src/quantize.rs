//! Lossy 8-bit quantization of knowledge payloads.
//!
//! The paper's conclusion lists "optimizing resource efficiency" as future
//! work; the lowest-hanging fruit for a KD-based method is quantizing the
//! transferred logits, which cuts the dominant payload by 4× at negligible
//! accuracy cost (logits only steer a softmax). This module implements
//! affine u8 quantization with per-message range calibration.

use crate::wire::{
    get_bytes, get_f32, get_len, get_u32, put_f32, put_u32, put_u32_slice, Wire, WireError,
};

/// Quantization failed because the input contains a non-finite value.
///
/// NaN or infinite logits (a diverged model, or an adversarial client) have
/// no meaningful affine u8 encoding — the min/max calibration would poison
/// every other value in the payload. Following the crate's "bad payloads
/// never panic" contract, [`QuantizedLogits::from_values`] surfaces this as
/// a typed error so callers can fall back to an unquantized path or drop
/// the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizeError {
    /// Index (into the flattened value slice) of the first non-finite value.
    pub index: usize,
}

impl std::fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot quantize non-finite value at index {}",
            self.index
        )
    }
}

impl std::error::Error for QuantizeError {}

/// A logits payload quantized to one byte per value.
///
/// Values are encoded as `q = round((v − min) / scale)` with the per-message
/// `min`/`scale` carried alongside, so decoding is
/// `v ≈ min + scale · q`. The quantization error is at most
/// `scale / 2 = (max − min) / 510`.
///
/// # Examples
///
/// ```
/// use fedpkd_netsim::{QuantizedLogits, Wire};
///
/// let q = QuantizedLogits::from_values(&[0, 1], 2, &[0.0, 3.0, -1.0, 2.0]).unwrap();
/// let restored = q.dequantize();
/// assert!(restored.iter().zip([0.0, 3.0, -1.0, 2.0]).all(|(a, b)| (a - b).abs() < 0.01));
/// assert!(q.max_error() < 0.01);
/// assert!(QuantizedLogits::from_values(&[0], 2, &[f32::NAN, 0.0]).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLogits {
    /// Public-dataset indices the rows refer to.
    pub sample_ids: Vec<u32>,
    /// Number of classes (row width).
    pub num_classes: u32,
    /// Minimum of the original values (dequantization offset).
    pub min: f32,
    /// Quantization step.
    pub scale: f32,
    /// One byte per value, row-major.
    pub values: Vec<u8>,
}

impl QuantizedLogits {
    /// Quantizes a row-major value matrix.
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError`] if any value is non-finite (NaN or ±∞) —
    /// such inputs arise from diverged or adversarial models and must not
    /// crash the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != sample_ids.len() * num_classes`; the shape
    /// is under the caller's control, so a mismatch is a programming error.
    pub fn from_values(
        sample_ids: &[u32],
        num_classes: u32,
        values: &[f32],
    ) -> Result<Self, QuantizeError> {
        assert_eq!(
            values.len(),
            sample_ids.len() * num_classes as usize,
            "matrix shape mismatch"
        );
        if let Some(index) = values.iter().position(|v| !v.is_finite()) {
            return Err(QuantizeError { index });
        }
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let (min, scale) = if values.is_empty() || max <= min {
            (if values.is_empty() { 0.0 } else { min }, 1.0)
        } else {
            (min, (max - min) / 255.0)
        };
        let quantized = values
            .iter()
            .map(|&v| (((v - min) / scale).round().clamp(0.0, 255.0)) as u8)
            .collect();
        Ok(Self {
            sample_ids: sample_ids.to_vec(),
            num_classes,
            min,
            scale,
            values: quantized,
        })
    }

    /// Restores approximate f32 values.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values
            .iter()
            .map(|&q| self.min + self.scale * q as f32)
            .collect()
    }

    /// Worst-case absolute reconstruction error of this payload.
    pub fn max_error(&self) -> f32 {
        self.scale / 2.0
    }
}

impl Wire for QuantizedLogits {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32_slice(buf, &self.sample_ids);
        put_u32(buf, self.num_classes);
        put_f32(buf, self.min);
        put_f32(buf, self.scale);
        put_u32(buf, self.values.len() as u32);
        buf.extend_from_slice(&self.values);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let sample_ids = crate::wire::get_u32_vec(buf)?;
        let num_classes = get_u32(buf)?;
        let min = get_f32(buf)?;
        let scale = get_f32(buf)?;
        let n = get_len(buf)?;
        let values = get_bytes(buf, n)?;
        Ok(Self {
            sample_ids,
            num_classes,
            min,
            scale,
            values,
        })
    }

    fn encoded_len(&self) -> usize {
        4 + 4 * self.sample_ids.len() + 4 + 4 + 4 + 4 + self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_within_error_bound() {
        let values: Vec<f32> = (0..40).map(|i| (i as f32) * 0.37 - 7.0).collect();
        let ids: Vec<u32> = (0..10).collect();
        let q = QuantizedLogits::from_values(&ids, 4, &values).unwrap();
        let restored = q.dequantize();
        let bound = q.max_error() + 1e-6;
        for (a, b) in restored.iter().zip(&values) {
            assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
        }
    }

    #[test]
    fn wire_round_trip() {
        let values = vec![1.5f32, -2.0, 0.0, 7.25];
        let q = QuantizedLogits::from_values(&[3, 9], 2, &values).unwrap();
        let bytes = q.to_bytes();
        assert_eq!(bytes.len(), q.encoded_len());
        let mut slice = bytes.as_slice();
        let decoded = QuantizedLogits::decode(&mut slice).unwrap();
        assert_eq!(decoded, q);
        assert!(slice.is_empty());
    }

    #[test]
    fn compresses_about_4x_vs_f32() {
        let n = 500usize;
        let k = 10usize;
        let ids: Vec<u32> = (0..n as u32).collect();
        let values = vec![0.5f32; n * k];
        let quantized = QuantizedLogits::from_values(&ids, k as u32, &values)
            .unwrap()
            .encoded_len();
        let full = crate::Message::Logits {
            sample_ids: ids,
            num_classes: k as u32,
            values,
        }
        .encoded_len();
        let ratio = full as f64 / quantized as f64;
        assert!(ratio > 2.5, "compression ratio {ratio}");
    }

    #[test]
    fn constant_values_survive() {
        let q = QuantizedLogits::from_values(&[0], 3, &[2.5, 2.5, 2.5]).unwrap();
        assert_eq!(q.dequantize(), vec![2.5, 2.5, 2.5]);
    }

    #[test]
    fn empty_payload() {
        let q = QuantizedLogits::from_values(&[], 5, &[]).unwrap();
        assert!(q.dequantize().is_empty());
        let bytes = q.to_bytes();
        let mut slice = bytes.as_slice();
        assert_eq!(QuantizedLogits::decode(&mut slice).unwrap(), q);
    }

    #[test]
    #[should_panic(expected = "matrix shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = QuantizedLogits::from_values(&[0, 1], 3, &[1.0]);
    }

    #[test]
    fn non_finite_values_yield_a_typed_error() {
        // A NaN anywhere in the payload must surface as an error naming the
        // offending index, never a panic — adversarial clients and diverged
        // servers both produce such payloads.
        let err = QuantizedLogits::from_values(&[0], 2, &[1.0, f32::NAN]).unwrap_err();
        assert_eq!(err, QuantizeError { index: 1 });
        assert!(err.to_string().contains("index 1"));
        let inf = QuantizedLogits::from_values(&[0], 1, &[f32::INFINITY]);
        assert_eq!(inf.unwrap_err().index, 0);
        let neg = QuantizedLogits::from_values(&[0], 1, &[f32::NEG_INFINITY]);
        assert!(neg.is_err());
    }

    #[test]
    fn truncated_decode_errors() {
        let q = QuantizedLogits::from_values(&[0], 4, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let bytes = q.to_bytes();
        let mut slice = &bytes[..bytes.len() - 2];
        assert!(QuantizedLogits::decode(&mut slice).is_err());
    }
}
