//! Simulated network substrate for federated-learning experiments.
//!
//! The paper's communication results (Fig. 3 and Table I) are byte counts of
//! the payloads exchanged between clients and the server — model updates for
//! FedAvg/FedProx/FedDF, logits (and, in FedPKD, prototypes) for the
//! KD-based methods. This crate makes those numbers *measured* rather than
//! estimated: every payload is a [`Message`] with a binary wire encoding,
//! and a [`CommLedger`] records the exact encoded size of everything that
//! crosses the simulated network, per round, per client, per direction.
//!
//! A simple [`LinkModel`] (bandwidth + latency) converts byte counts into
//! transfer times for straggler analysis, and a seeded [`FaultPlan`] turns
//! those timings plus dropout/outage schedules into deterministic per-round
//! participation [`Cohort`]s.
//!
//! # Examples
//!
//! ```
//! use fedpkd_netsim::{CommLedger, Direction, Message, Wire};
//!
//! let mut ledger = CommLedger::new();
//! let msg = Message::ModelUpdate { params: vec![0.0; 1000] };
//! ledger.record(0, 3, Direction::Uplink, &msg);
//! assert!(ledger.total_bytes() >= 4000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod fault;
mod ledger;
mod link;
mod message;
mod quantize;
mod wire;

pub use adversary::{Attack, RoundContext};
pub use fault::{sample_cohort, Cohort, CohortPolicy, Deadline, DropCause, FaultPlan};
pub use ledger::{bytes_to_mb, CommLedger, Direction, RoundTraffic, TransferRecord};
pub use link::LinkModel;
pub use message::{Message, PrototypeEntry};
pub use quantize::{QuantizeError, QuantizedLogits};
pub use wire::{Wire, WireError};
