//! Deterministic fault injection for federated rounds.
//!
//! The paper's setting — heterogeneous edge clients on constrained links
//! (§V) — is exactly where dropouts and stragglers dominate, yet the ideal
//! round engine assumes every client uploads every round. A [`FaultPlan`]
//! makes partial participation a first-class, *reproducible* part of a
//! simulation: given the same seed and plan, every round's surviving cohort
//! is bit-identical across runs and platforms.
//!
//! Three fault mechanisms compose, checked in priority order per client:
//!
//! 1. **Crash outages** — a client is offline for a contiguous window of
//!    rounds ([`FaultPlan::with_outage`]).
//! 2. **Random dropout** — each client independently misses a round with a
//!    fixed probability ([`FaultPlan::with_dropout`]), drawn from a
//!    per-`(round, client)` RNG stream so the decision does not depend on
//!    evaluation order or cohort size.
//! 3. **Straggler deadlines** — a per-client slowdown factor layered on a
//!    [`LinkModel`] converts the client's expected uplink payload into a
//!    simulated transfer time; clients that would miss the round deadline
//!    are dropped ([`FaultPlan::with_deadline`],
//!    [`FaultPlan::with_slowdown`]).
//!
//! The outcome of a round's fault evaluation is a [`Cohort`]: which clients
//! participate and why the others were dropped.
//!
//! # Examples
//!
//! ```
//! use fedpkd_netsim::{Cohort, DropCause, FaultPlan, LinkModel};
//!
//! let plan = FaultPlan::new(7)
//!     .with_dropout(0.2)
//!     .with_outage(1, 3, 2) // client 1 offline in rounds 3 and 4
//!     .with_deadline(LinkModel::cellular(), 1.0)
//!     .with_slowdown(2, 8.0);
//! let cohort = plan.cohort(3, 4, &[1000, 1000, 1000, 1000]);
//! assert_eq!(cohort.cause(1), Some(DropCause::Crash));
//! // Deterministic: the same (round, num_clients, payloads) always yields
//! // the same cohort.
//! assert_eq!(cohort, plan.cohort(3, 4, &[1000, 1000, 1000, 1000]));
//! ```

use crate::adversary::{Attack, RoundContext};
use crate::LinkModel;
use fedpkd_rng::Rng;

/// A transfer cutoff, in seconds — the *one* deadline representation shared
/// by the simulated network and the real serving layer.
///
/// [`FaultPlan::with_deadline`] stores one of these to decide which
/// simulated transfers miss their round, and `fedpkd-serve` derives its
/// socket read/write timeouts and per-round collection window from the very
/// same value, so the survivor-only round outcome at a given cutoff is the
/// same whether the network is simulated or real: a transfer that takes
/// exactly the deadline *makes* it ([`exceeded_by`](Self::exceeded_by) is a
/// strict comparison) in both worlds.
///
/// # Examples
///
/// ```
/// use fedpkd_netsim::Deadline;
///
/// let d = Deadline::from_secs(1.5);
/// assert!(!d.exceeded_by(1.5), "exactly on time still commits");
/// assert!(d.exceeded_by(1.500001));
/// assert_eq!(d.to_duration(), std::time::Duration::from_secs_f64(1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadline {
    seconds: f64,
}

impl Deadline {
    /// A deadline of `seconds`.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive and finite.
    pub fn from_secs(seconds: f64) -> Self {
        assert!(
            seconds > 0.0 && seconds.is_finite(),
            "deadline must be positive"
        );
        Self { seconds }
    }

    /// The cutoff in seconds.
    pub fn seconds(self) -> f64 {
        self.seconds
    }

    /// The cutoff as a [`std::time::Duration`] — the form socket timeouts
    /// take.
    pub fn to_duration(self) -> std::time::Duration {
        std::time::Duration::from_secs_f64(self.seconds)
    }

    /// Whether a transfer (or wait) of `elapsed_seconds` misses this
    /// deadline. Strict: exactly on the cutoff still commits, in both the
    /// simulated cohort evaluation and the serving layer's round window.
    pub fn exceeded_by(self, elapsed_seconds: f64) -> bool {
        elapsed_seconds > self.seconds
    }

    /// How many whole deadline windows a transfer of `elapsed_seconds`
    /// overruns: `None` when it meets the cutoff, `Some(lag ≥ 1)` when it
    /// lands `lag` windows late (the bounded-staleness currency of
    /// [`FaultPlan::deadline_lag`]).
    pub fn lag_of(self, elapsed_seconds: f64) -> Option<usize> {
        if !self.exceeded_by(elapsed_seconds) {
            return None;
        }
        // The transfer spans ceil(elapsed / deadline) round windows; it
        // lands lag = that - 1 rounds after the one it started in.
        let lag = (elapsed_seconds / self.seconds).ceil() as usize;
        Some(lag.saturating_sub(1).max(1))
    }
}

/// Why a client missed a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DropCause {
    /// Random per-round dropout (flaky connectivity).
    Dropout,
    /// A scheduled crash outage window.
    Crash,
    /// The simulated uplink transfer would miss the round deadline.
    Deadline,
    /// The client was not drawn into this round's cohort sample — it was
    /// never invited, so (unlike the fault causes above) it is excluded
    /// from the participation-rate denominator and emits no drop
    /// telemetry.
    Unsampled,
}

impl DropCause {
    /// The snake_case name used in serialized telemetry.
    pub fn name(self) -> &'static str {
        match self {
            Self::Dropout => "dropout",
            Self::Crash => "crash",
            Self::Deadline => "deadline",
            Self::Unsampled => "unsampled",
        }
    }
}

/// The set of clients participating in one round, with drop causes for the
/// rest.
///
/// Algorithms receive the round's cohort from the driver and must only
/// train, upload, and downlink the *active* clients; dropped clients keep
/// their stale local state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cohort {
    causes: Vec<Option<DropCause>>,
}

impl Cohort {
    /// A fault-free cohort: every one of `num_clients` clients participates.
    pub fn full(num_clients: usize) -> Self {
        Self {
            causes: vec![None; num_clients],
        }
    }

    /// Builds a cohort from per-client drop causes (`None` = active).
    pub fn from_causes(causes: Vec<Option<DropCause>>) -> Self {
        Self { causes }
    }

    /// Total clients the cohort was drawn from.
    pub fn num_clients(&self) -> usize {
        self.causes.len()
    }

    /// Whether `client` participates this round.
    pub fn is_active(&self, client: usize) -> bool {
        self.causes.get(client).is_some_and(Option::is_none)
    }

    /// Why `client` was dropped, or `None` if it participates.
    pub fn cause(&self, client: usize) -> Option<DropCause> {
        self.causes.get(client).copied().flatten()
    }

    /// Indices of the participating clients, ascending.
    pub fn survivors(&self) -> Vec<usize> {
        (0..self.causes.len())
            .filter(|&c| self.causes[c].is_none())
            .collect()
    }

    /// `(client, cause)` for every dropped client, ascending.
    pub fn dropped(&self) -> Vec<(usize, DropCause)> {
        self.causes
            .iter()
            .enumerate()
            .filter_map(|(c, cause)| cause.map(|cause| (c, cause)))
            .collect()
    }

    /// Number of participating clients.
    pub fn num_active(&self) -> usize {
        self.causes.iter().filter(|c| c.is_none()).count()
    }

    /// Number of clients *invited* this round: everyone except
    /// [`DropCause::Unsampled`] drops. Without cohort sampling this equals
    /// [`num_clients`](Self::num_clients).
    pub fn num_invited(&self) -> usize {
        self.causes
            .iter()
            .filter(|c| **c != Some(DropCause::Unsampled))
            .count()
    }

    /// Participating fraction of the *invited* clients, in `[0, 1]` (1.0
    /// when nobody was invited, including the empty cohort).
    ///
    /// Clients outside a sampled cohort were never asked to participate,
    /// so counting them as casualties would drown the fault signal: a
    /// 10 000-client fleet sampling 256 per round would report ≤ 2.56%
    /// "participation" every round. Only invited clients enter the
    /// denominator.
    pub fn participation_rate(&self) -> f64 {
        let invited = self.num_invited();
        if invited == 0 {
            1.0
        } else {
            self.num_active() as f64 / invited as f64
        }
    }

    /// Re-marks every client *not* in `sampled` (a set of client indices)
    /// as [`DropCause::Unsampled`], overriding any fault cause — an
    /// uninvited client cannot crash out of a round it was never in.
    pub fn restrict_to_sample(mut self, sampled: &[usize]) -> Self {
        let mut invited = vec![false; self.causes.len()];
        for &client in sampled {
            if let Some(slot) = invited.get_mut(client) {
                *slot = true;
            }
        }
        for (cause, invited) in self.causes.iter_mut().zip(&invited) {
            if !invited {
                *cause = Some(DropCause::Unsampled);
            }
        }
        self
    }
}

/// How the driver picks each round's cohort from the client fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum CohortPolicy {
    /// Every client is invited every round (the classic small-scale
    /// setting; the default).
    #[default]
    Full,
    /// Invite a seeded uniform sample of `size` distinct clients per round
    /// (capped at the fleet size). Sampling is a pure function of
    /// `(seed, round, fleet)` — see [`sample_cohort`] — so replays and
    /// resumed runs draw identical cohorts.
    Sample {
        /// Clients invited per round.
        size: usize,
        /// Seed rooting the per-round sampling streams, deliberately
        /// separate from both the algorithm seed and the fault seed.
        seed: u64,
    },
}

/// Salt separating cohort-sampling RNG streams from the dropout and attack
/// streams that may share a seed value.
const COHORT_STREAM_SALT: u64 = 0xC0_0417_5A3B_17E5;

/// Draws round `round`'s cohort sample: `min(size, fleet)` distinct client
/// indices from `0..fleet`, ascending.
///
/// The draw comes from a dedicated `(seed, round)` RNG stream (one partial
/// Fisher–Yates per round), so it is a pure function of its arguments:
/// independent of every other round, of the order rounds are evaluated in,
/// and of any driver state — which is what makes sampled runs replayable
/// and resumable from any round boundary.
pub fn sample_cohort(seed: u64, round: usize, fleet: usize, size: usize) -> Vec<usize> {
    let round_seed = seed
        .wrapping_add(COHORT_STREAM_SALT)
        .wrapping_add((round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut rng = Rng::stream(round_seed, 0);
    let mut picks = fedpkd_rng::sample_indices(&mut rng, fleet, size.min(fleet));
    picks.sort_unstable();
    picks
}

/// A scheduled crash window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outage {
    client: usize,
    start_round: usize,
    rounds: usize,
}

/// A seeded, deterministic fault schedule for a federated run.
///
/// Built with the `with_*` combinators and evaluated per round with
/// [`cohort`](Self::cohort). Evaluation is a pure function of
/// `(plan, round, num_clients, payload_bytes)` — no hidden state — so the
/// same plan replayed over the same run produces bit-identical cohorts,
/// which is what makes faulty runs reproducible end to end.
///
/// Purity is also what makes fault plans checkpoint-friendly: a plan's
/// "position" in a run is fully determined by the round index, so a
/// snapshot only needs to persist the number of rounds already driven
/// (see `DriverState` in `fedpkd-core`) — the plan itself is
/// reconstructed from configuration and replays identically from any
/// round.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    dropout: f64,
    outages: Vec<Outage>,
    slowdowns: Vec<(usize, f64)>,
    link: LinkModel,
    deadline: Option<Deadline>,
    adversaries: Vec<(usize, Attack)>,
}

impl FaultPlan {
    /// An empty plan (no faults) rooted at `seed`.
    ///
    /// The seed only feeds the dropout draws; it is deliberately separate
    /// from the algorithm seed so the same fault schedule can be replayed
    /// against different model initializations.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            dropout: 0.0,
            outages: Vec::new(),
            slowdowns: Vec::new(),
            link: LinkModel::wifi(),
            deadline: None,
            adversaries: Vec::new(),
        }
    }

    /// Sets the per-client, per-round dropout probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_dropout(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "dropout probability must be in [0, 1]"
        );
        self.dropout = p;
        self
    }

    /// Schedules `client` to crash for `rounds` consecutive rounds starting
    /// at `start_round`.
    pub fn with_outage(mut self, client: usize, start_round: usize, rounds: usize) -> Self {
        self.outages.push(Outage {
            client,
            start_round,
            rounds,
        });
        self
    }

    /// Slows `client`'s link by `factor` (≥ 1): its transfers take `factor`
    /// times as long, which matters once a deadline is set.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1` or is non-finite.
    pub fn with_slowdown(mut self, client: usize, factor: f64) -> Self {
        assert!(
            factor >= 1.0 && factor.is_finite(),
            "slowdown factor must be >= 1"
        );
        self.slowdowns.push((client, factor));
        self
    }

    /// Sets the round deadline: a client whose simulated uplink transfer
    /// over `link` (after its slowdown factor) exceeds `seconds` is dropped
    /// as a straggler.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not positive and finite.
    pub fn with_deadline(self, link: LinkModel, seconds: f64) -> Self {
        self.with_transfer_deadline(link, Deadline::from_secs(seconds))
    }

    /// [`with_deadline`](Self::with_deadline) with an explicit [`Deadline`]
    /// — the form the serving layer uses so the simulated cutoff and the
    /// socket timeouts come from one value.
    pub fn with_transfer_deadline(mut self, link: LinkModel, deadline: Deadline) -> Self {
        self.link = link;
        self.deadline = Some(deadline);
        self
    }

    /// The configured transfer deadline, if any — shared verbatim with the
    /// serving layer's socket timeouts and round-collection window.
    pub fn deadline(&self) -> Option<Deadline> {
        self.deadline
    }

    /// Marks `client` as Byzantine: whenever it participates, it mounts
    /// `attack` on its uploads (see [`Attack`]). The corruption is applied
    /// by the algorithm layer through the round's [`RoundContext`], drawn
    /// from a dedicated `(seed, round, client)` RNG stream so adversarial
    /// runs replay bit-identically. A later call for the same client
    /// replaces the earlier attack.
    pub fn with_adversary(mut self, client: usize, attack: Attack) -> Self {
        self.adversaries.retain(|&(c, _)| c != client);
        self.adversaries.push((client, attack));
        self
    }

    /// The attack `client` mounts, or `None` if it is honest.
    pub fn attack(&self, client: usize) -> Option<Attack> {
        self.adversaries
            .iter()
            .find(|&&(c, _)| c == client)
            .map(|&(_, a)| a)
    }

    /// Whether any client is marked Byzantine.
    pub fn has_adversaries(&self) -> bool {
        !self.adversaries.is_empty()
    }

    /// The effective slowdown factor for `client` (1.0 unless configured).
    pub fn slowdown(&self, client: usize) -> f64 {
        self.slowdowns
            .iter()
            .rev()
            .find(|&&(c, _)| c == client)
            .map_or(1.0, |&(_, f)| f)
    }

    /// Evaluates the plan for one round.
    ///
    /// `payload_bytes[client]` is the expected uplink payload used for the
    /// deadline check (the driver feeds each client's last observed uplink;
    /// missing entries count as zero bytes, so in round 0 only latency and
    /// slowdown can breach the deadline). Causes are checked in priority
    /// order: crash, then dropout, then deadline. Dropout decisions come
    /// from a dedicated `(seed, round, client)` RNG stream, so they are
    /// independent of cohort size and check order.
    pub fn cohort(&self, round: usize, num_clients: usize, payload_bytes: &[usize]) -> Cohort {
        let causes = (0..num_clients)
            .map(|client| {
                if self.in_outage(client, round) {
                    Some(DropCause::Crash)
                } else if self.dropout > 0.0 && self.dropout_hit(round, client) {
                    Some(DropCause::Dropout)
                } else if let Some(deadline) = self.deadline {
                    let bytes = payload_bytes.get(client).copied().unwrap_or(0);
                    let time = self.link.slowed(self.slowdown(client)).transfer_time(bytes);
                    deadline.exceeded_by(time).then_some(DropCause::Deadline)
                } else {
                    None
                }
            })
            .collect();
        Cohort::from_causes(causes)
    }

    /// Evaluates the plan for one round into a full [`RoundContext`]:
    /// the surviving cohort plus the Byzantine attack roster, rooted at
    /// this plan's seed so corruption draws are replayable.
    pub fn round_context(
        &self,
        round: usize,
        num_clients: usize,
        payload_bytes: &[usize],
    ) -> RoundContext {
        let cohort = self.cohort(round, num_clients, payload_bytes);
        let attacks = (0..num_clients).map(|c| self.attack(c)).collect();
        RoundContext::with_attacks(cohort, attacks, self.seed)
    }

    /// How many round deadlines `client`'s uplink of `payload_bytes` would
    /// overrun: `None` if the client meets the deadline (or no deadline is
    /// configured), `Some(lag ≥ 1)` if the transfer finishes during round
    /// `current + lag`.
    ///
    /// This is the bounded-staleness hook: a driver running in async mode
    /// can admit a straggler's upload `lag` rounds late instead of
    /// discarding it, as long as `lag` stays within its staleness bound.
    /// Like [`cohort`](Self::cohort), it is a pure function of the plan and
    /// its arguments.
    pub fn deadline_lag(&self, client: usize, payload_bytes: usize) -> Option<usize> {
        let deadline = self.deadline?;
        let time = self
            .link
            .slowed(self.slowdown(client))
            .transfer_time(payload_bytes);
        deadline.lag_of(time)
    }

    fn in_outage(&self, client: usize, round: usize) -> bool {
        self.outages.iter().any(|o| {
            o.client == client && round >= o.start_round && round < o.start_round + o.rounds
        })
    }

    fn dropout_hit(&self, round: usize, client: usize) -> bool {
        // One draw from a stream keyed on (seed, round, client): decisions
        // never shift when other clients are added or checks are reordered.
        let round_seed = self
            .seed
            .wrapping_add((round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Rng::stream(round_seed, client as u64).bernoulli(self.dropout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cohort_has_everyone() {
        let cohort = Cohort::full(3);
        assert_eq!(cohort.num_clients(), 3);
        assert_eq!(cohort.survivors(), vec![0, 1, 2]);
        assert!(cohort.dropped().is_empty());
        assert_eq!(cohort.participation_rate(), 1.0);
        assert!(cohort.is_active(2));
        assert!(!cohort.is_active(3), "out-of-range client is not active");
    }

    #[test]
    fn empty_plan_drops_nobody() {
        let plan = FaultPlan::new(1);
        for round in 0..5 {
            assert_eq!(plan.cohort(round, 4, &[]), Cohort::full(4));
        }
    }

    #[test]
    fn cohorts_are_deterministic() {
        let plan = FaultPlan::new(99).with_dropout(0.5);
        for round in 0..10 {
            let a = plan.cohort(round, 8, &[]);
            let b = plan.cohort(round, 8, &[]);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn dropout_decisions_ignore_cohort_size() {
        // Adding clients must not change earlier clients' fates.
        let plan = FaultPlan::new(7).with_dropout(0.5);
        for round in 0..6 {
            let small = plan.cohort(round, 3, &[]);
            let large = plan.cohort(round, 10, &[]);
            for client in 0..3 {
                assert_eq!(small.cause(client), large.cause(client));
            }
        }
    }

    #[test]
    fn dropout_rate_is_plausible() {
        let plan = FaultPlan::new(5).with_dropout(0.3);
        let mut dropped = 0usize;
        let total = 100 * 10;
        for round in 0..100 {
            dropped += 10 - plan.cohort(round, 10, &[]).num_active();
        }
        let rate = dropped as f64 / total as f64;
        assert!((0.2..0.4).contains(&rate), "observed dropout rate {rate}");
    }

    #[test]
    fn outage_window_is_half_open() {
        let plan = FaultPlan::new(0).with_outage(1, 2, 3);
        assert!(plan.cohort(1, 3, &[]).is_active(1));
        for round in 2..5 {
            assert_eq!(plan.cohort(round, 3, &[]).cause(1), Some(DropCause::Crash));
        }
        assert!(plan.cohort(5, 3, &[]).is_active(1));
        // Other clients are untouched.
        assert!(plan.cohort(3, 3, &[]).is_active(0));
    }

    #[test]
    fn deadline_drops_slowed_stragglers_only() {
        // 1 KB/s link, zero latency; 1000-byte payload takes 1 s.
        let link = LinkModel::new(1000.0, 0.0);
        let plan = FaultPlan::new(0)
            .with_deadline(link, 2.0)
            .with_slowdown(1, 4.0);
        let cohort = plan.cohort(0, 2, &[1000, 1000]);
        assert!(cohort.is_active(0), "1 s transfer meets a 2 s deadline");
        assert_eq!(
            cohort.cause(1),
            Some(DropCause::Deadline),
            "4 s slowed transfer misses it"
        );
    }

    #[test]
    fn missing_payload_estimates_count_as_zero_bytes() {
        let link = LinkModel::new(1000.0, 0.5);
        let plan = FaultPlan::new(0).with_deadline(link, 1.0);
        // No payload data: only latency (0.5 s) counts, everyone makes it.
        assert_eq!(plan.cohort(0, 3, &[]), Cohort::full(3));
        // An extreme slowdown breaches the deadline on latency alone.
        let slow = plan.with_slowdown(2, 3.0);
        assert_eq!(slow.cohort(0, 3, &[]).cause(2), Some(DropCause::Deadline));
    }

    #[test]
    fn crash_takes_priority_over_dropout_and_deadline() {
        let link = LinkModel::new(1.0, 10.0);
        let plan = FaultPlan::new(3)
            .with_dropout(1.0)
            .with_outage(0, 0, 1)
            .with_deadline(link, 0.1);
        let cohort = plan.cohort(0, 2, &[10, 10]);
        assert_eq!(cohort.cause(0), Some(DropCause::Crash));
        assert_eq!(cohort.cause(1), Some(DropCause::Dropout));
    }

    #[test]
    fn cohort_accessors_are_consistent() {
        let plan = FaultPlan::new(11).with_dropout(0.5);
        let cohort = plan.cohort(2, 12, &[]);
        let survivors = cohort.survivors();
        let dropped = cohort.dropped();
        assert_eq!(survivors.len() + dropped.len(), 12);
        assert_eq!(cohort.num_active(), survivors.len());
        for &c in &survivors {
            assert!(cohort.is_active(c));
            assert_eq!(cohort.cause(c), None);
        }
        for &(c, cause) in &dropped {
            assert!(!cohort.is_active(c));
            assert_eq!(cohort.cause(c), Some(cause));
        }
        let rate = cohort.participation_rate();
        assert!((rate - survivors.len() as f64 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn drop_cause_names() {
        assert_eq!(DropCause::Dropout.name(), "dropout");
        assert_eq!(DropCause::Crash.name(), "crash");
        assert_eq!(DropCause::Deadline.name(), "deadline");
        assert_eq!(DropCause::Unsampled.name(), "unsampled");
    }

    #[test]
    fn sample_cohort_is_deterministic_sorted_and_duplicate_free() {
        let picks = sample_cohort(7, 3, 10_000, 256);
        assert_eq!(picks, sample_cohort(7, 3, 10_000, 256));
        assert_eq!(picks.len(), 256);
        assert!(picks.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(picks.iter().all(|&c| c < 10_000));
        // Different rounds and seeds draw different cohorts.
        assert_ne!(picks, sample_cohort(7, 4, 10_000, 256));
        assert_ne!(picks, sample_cohort(8, 3, 10_000, 256));
        // Oversized requests clamp to the fleet.
        assert_eq!(sample_cohort(1, 0, 5, 99), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn restricted_cohort_reports_invited_participation() {
        let plan = FaultPlan::new(0).with_outage(2, 0, 1);
        let cohort = plan.cohort(0, 6, &[]).restrict_to_sample(&[1, 2, 3]);
        assert_eq!(cohort.cause(0), Some(DropCause::Unsampled));
        assert_eq!(
            cohort.cause(2),
            Some(DropCause::Crash),
            "invited but crashed"
        );
        assert!(cohort.is_active(1) && cohort.is_active(3));
        assert_eq!(cohort.num_invited(), 3);
        assert_eq!(cohort.num_active(), 2);
        assert!((cohort.participation_rate() - 2.0 / 3.0).abs() < 1e-12);
        // An uninvited client's fault cause is overridden.
        let all_out = plan.cohort(0, 3, &[]).restrict_to_sample(&[]);
        assert_eq!(all_out.cause(2), Some(DropCause::Unsampled));
        assert_eq!(all_out.participation_rate(), 1.0, "nobody invited");
    }

    #[test]
    fn deadline_lag_counts_overrun_round_windows() {
        // 1 KB/s link, zero latency: 1000 bytes take 1 s.
        let link = LinkModel::new(1000.0, 0.0);
        let plan = FaultPlan::new(0)
            .with_deadline(link, 1.0)
            .with_slowdown(1, 3.0);
        assert_eq!(plan.deadline_lag(0, 900), None, "meets the deadline");
        assert_eq!(plan.deadline_lag(0, 1500), Some(1), "lands next round");
        assert_eq!(plan.deadline_lag(0, 3500), Some(3));
        assert_eq!(plan.deadline_lag(1, 1000), Some(2), "slowdown compounds");
        assert_eq!(
            FaultPlan::new(0).deadline_lag(0, usize::MAX),
            None,
            "no deadline configured"
        );
    }

    #[test]
    fn deadline_is_one_representation_for_simulated_and_real_cutoffs() {
        // The serving layer waits `deadline.to_duration()` wall-clock and
        // asks `exceeded_by(elapsed)`; the fault plan asks `exceeded_by`
        // of the simulated transfer time. Same predicate, same outcome:
        // exactly-on-time commits in both, strictly-later misses in both.
        let d = Deadline::from_secs(2.0);
        assert_eq!(d.seconds(), 2.0);
        assert_eq!(d.to_duration(), std::time::Duration::from_secs(2));
        assert!(!d.exceeded_by(2.0));
        assert!(d.exceeded_by(2.0 + 1e-9));

        // A 1 KB/s link carries 2000 bytes in exactly 2 s: the plan built
        // on the same Deadline keeps that client, drops the 2001-byte one.
        let link = LinkModel::new(1000.0, 0.0);
        let plan = FaultPlan::new(0).with_transfer_deadline(link, d);
        assert_eq!(plan.deadline(), Some(d));
        let cohort = plan.cohort(0, 2, &[2000, 2001]);
        assert!(cohort.is_active(0), "exactly-on-time transfer commits");
        assert_eq!(cohort.cause(1), Some(DropCause::Deadline));
        // And `with_deadline(link, secs)` is the same plan.
        assert_eq!(plan, FaultPlan::new(0).with_deadline(link, 2.0));
    }

    #[test]
    fn deadline_lag_windows() {
        let d = Deadline::from_secs(1.0);
        assert_eq!(d.lag_of(0.5), None);
        assert_eq!(d.lag_of(1.0), None);
        assert_eq!(d.lag_of(1.5), Some(1));
        assert_eq!(d.lag_of(3.5), Some(3));
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn deadline_rejects_non_positive() {
        let _ = Deadline::from_secs(0.0);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_bad_dropout() {
        let _ = FaultPlan::new(0).with_dropout(1.5);
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn rejects_bad_slowdown() {
        let _ = FaultPlan::new(0).with_slowdown(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn rejects_bad_deadline() {
        let _ = FaultPlan::new(0).with_deadline(LinkModel::wifi(), 0.0);
    }
}
