//! The catalog of messages exchanged in the simulated federation.

use crate::wire::{
    get_f32_vec, get_len, get_u32, get_u32_vec, get_u8, put_f32_slice, put_u32, put_u32_slice,
    put_u8, Wire, WireError,
};

/// One class prototype as shipped on the wire: the class id, the number of
/// local samples it was averaged over (needed for the size-weighted
/// aggregation of Eq. 8), and the feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct PrototypeEntry {
    /// Class index.
    pub class: u32,
    /// Number of samples averaged into this prototype.
    pub count: u32,
    /// The prototype vector (mean feature embedding, Eq. 5).
    pub vector: Vec<f32>,
}

impl Wire for PrototypeEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.class);
        put_u32(buf, self.count);
        put_f32_slice(buf, &self.vector);
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let class = get_u32(buf)?;
        let count = get_u32(buf)?;
        let vector = get_f32_vec(buf)?;
        Ok(Self {
            class,
            count,
            vector,
        })
    }

    fn encoded_len(&self) -> usize {
        4 + 4 + 4 + 4 * self.vector.len()
    }
}

/// A payload crossing the simulated client↔server network.
///
/// The variants cover everything the reproduced algorithms transfer:
/// parameter vectors (FedAvg, FedProx, FedDF), per-sample logits (all
/// KD-based methods), prototypes (FedPKD's dual knowledge), and
/// filtered-subset announcements (FedPKD's server→client selection).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A full model parameter vector.
    ModelUpdate {
        /// Flattened parameters.
        params: Vec<f32>,
    },
    /// Logits over a set of public samples: `logits[i]` belongs to
    /// `sample_ids[i]` and all rows share `num_classes` columns.
    Logits {
        /// Public-dataset indices the rows refer to.
        sample_ids: Vec<u32>,
        /// Number of classes (row width).
        num_classes: u32,
        /// Row-major logits, `sample_ids.len() × num_classes` values.
        values: Vec<f32>,
    },
    /// A set of class prototypes.
    Prototypes {
        /// One entry per class the sender has data for.
        entries: Vec<PrototypeEntry>,
    },
    /// The server's announcement of which public samples were selected by
    /// the data filter (clients need the ids to train on the subset).
    SampleSelection {
        /// Selected public-dataset indices.
        ids: Vec<u32>,
    },
    /// A server-synthesized transfer batch (data-free distillation): the
    /// generated samples plus the class each row was conditioned on.
    SyntheticBatch {
        /// Feature dimension (row width of `values`).
        sample_dim: u32,
        /// Conditioning class per row.
        labels: Vec<u32>,
        /// Row-major features, `labels.len() × sample_dim` values.
        values: Vec<f32>,
    },
    /// Per-class *input-space* first moments of a client's private data
    /// (data-free mode): the raw-feature class means that ground the
    /// server's generator in the real data distribution. Same entry shape
    /// as [`Message::Prototypes`], but the vectors live in input space,
    /// not the model's embedding space.
    DataMoments {
        /// One entry per class the sender has data for.
        entries: Vec<PrototypeEntry>,
    },
}

impl Message {
    const TAG_MODEL: u8 = 1;
    const TAG_LOGITS: u8 = 2;
    const TAG_PROTOTYPES: u8 = 3;
    const TAG_SELECTION: u8 = 4;
    const TAG_SYNTHETIC: u8 = 5;
    const TAG_MOMENTS: u8 = 6;

    /// A short name for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::ModelUpdate { .. } => "model-update",
            Self::Logits { .. } => "logits",
            Self::Prototypes { .. } => "prototypes",
            Self::SampleSelection { .. } => "sample-selection",
            Self::SyntheticBatch { .. } => "synthetic-batch",
            Self::DataMoments { .. } => "data-moments",
        }
    }
}

impl Wire for Message {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Self::ModelUpdate { params } => {
                put_u8(buf, Self::TAG_MODEL);
                put_f32_slice(buf, params);
            }
            Self::Logits {
                sample_ids,
                num_classes,
                values,
            } => {
                put_u8(buf, Self::TAG_LOGITS);
                put_u32_slice(buf, sample_ids);
                put_u32(buf, *num_classes);
                put_f32_slice(buf, values);
            }
            Self::Prototypes { entries } => {
                put_u8(buf, Self::TAG_PROTOTYPES);
                put_u32(buf, entries.len() as u32);
                for e in entries {
                    e.encode(buf);
                }
            }
            Self::SampleSelection { ids } => {
                put_u8(buf, Self::TAG_SELECTION);
                put_u32_slice(buf, ids);
            }
            Self::SyntheticBatch {
                sample_dim,
                labels,
                values,
            } => {
                put_u8(buf, Self::TAG_SYNTHETIC);
                put_u32(buf, *sample_dim);
                put_u32_slice(buf, labels);
                put_f32_slice(buf, values);
            }
            Self::DataMoments { entries } => {
                put_u8(buf, Self::TAG_MOMENTS);
                put_u32(buf, entries.len() as u32);
                for e in entries {
                    e.encode(buf);
                }
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match get_u8(buf)? {
            Self::TAG_MODEL => Ok(Self::ModelUpdate {
                params: get_f32_vec(buf)?,
            }),
            Self::TAG_LOGITS => {
                let sample_ids = get_u32_vec(buf)?;
                let num_classes = get_u32(buf)?;
                let values = get_f32_vec(buf)?;
                Ok(Self::Logits {
                    sample_ids,
                    num_classes,
                    values,
                })
            }
            Self::TAG_PROTOTYPES => {
                let n = get_len(buf)?;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    entries.push(PrototypeEntry::decode(buf)?);
                }
                Ok(Self::Prototypes { entries })
            }
            Self::TAG_SELECTION => Ok(Self::SampleSelection {
                ids: get_u32_vec(buf)?,
            }),
            Self::TAG_SYNTHETIC => {
                let sample_dim = get_u32(buf)?;
                let labels = get_u32_vec(buf)?;
                let values = get_f32_vec(buf)?;
                Ok(Self::SyntheticBatch {
                    sample_dim,
                    labels,
                    values,
                })
            }
            Self::TAG_MOMENTS => {
                let n = get_len(buf)?;
                let mut entries = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    entries.push(PrototypeEntry::decode(buf)?);
                }
                Ok(Self::DataMoments { entries })
            }
            other => Err(WireError::UnknownTag(other)),
        }
    }

    fn encoded_len(&self) -> usize {
        1 + match self {
            Self::ModelUpdate { params } => 4 + 4 * params.len(),
            Self::Logits {
                sample_ids, values, ..
            } => 4 + 4 * sample_ids.len() + 4 + 4 + 4 * values.len(),
            Self::Prototypes { entries } => {
                4 + entries.iter().map(Wire::encoded_len).sum::<usize>()
            }
            Self::SampleSelection { ids } => 4 + 4 * ids.len(),
            Self::SyntheticBatch { labels, values, .. } => {
                4 + 4 + 4 * labels.len() + 4 + 4 * values.len()
            }
            Self::DataMoments { entries } => {
                4 + entries.iter().map(Wire::encoded_len).sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: &Message) {
        let bytes = msg.to_bytes();
        assert_eq!(
            bytes.len(),
            msg.encoded_len(),
            "encoded_len must match the real encoding"
        );
        let mut slice = bytes.as_slice();
        let decoded = Message::decode(&mut slice).unwrap();
        assert_eq!(&decoded, msg);
        assert!(slice.is_empty(), "decode must consume everything");
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(&Message::ModelUpdate {
            params: vec![1.0, -2.0, 3.5],
        });
        round_trip(&Message::Logits {
            sample_ids: vec![0, 5, 9],
            num_classes: 4,
            values: (0..12).map(|i| i as f32).collect(),
        });
        round_trip(&Message::Prototypes {
            entries: vec![
                PrototypeEntry {
                    class: 0,
                    count: 17,
                    vector: vec![0.5; 8],
                },
                PrototypeEntry {
                    class: 3,
                    count: 2,
                    vector: vec![-1.0; 8],
                },
            ],
        });
        round_trip(&Message::SampleSelection { ids: vec![1, 2, 3] });
        round_trip(&Message::SyntheticBatch {
            sample_dim: 3,
            labels: vec![0, 1],
            values: vec![0.5, -0.5, 1.0, 2.0, -2.0, 0.0],
        });
        round_trip(&Message::DataMoments {
            entries: vec![PrototypeEntry {
                class: 7,
                count: 40,
                vector: vec![0.25; 16],
            }],
        });
    }

    #[test]
    fn empty_variants_round_trip() {
        round_trip(&Message::ModelUpdate { params: vec![] });
        round_trip(&Message::Prototypes { entries: vec![] });
        round_trip(&Message::SampleSelection { ids: vec![] });
        round_trip(&Message::SyntheticBatch {
            sample_dim: 0,
            labels: vec![],
            values: vec![],
        });
        round_trip(&Message::DataMoments { entries: vec![] });
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut slice: &[u8] = &[99u8, 0, 0, 0, 0];
        assert_eq!(Message::decode(&mut slice), Err(WireError::UnknownTag(99)));
    }

    #[test]
    fn logits_size_scales_with_samples_and_classes() {
        // The motivation experiment (Fig. 3): logit traffic is proportional
        // to public-set size.
        let size = |n: usize, k: usize| {
            Message::Logits {
                sample_ids: (0..n as u32).collect(),
                num_classes: k as u32,
                values: vec![0.0; n * k],
            }
            .encoded_len()
        };
        let s1 = size(100, 10);
        let s2 = size(200, 10);
        assert!(s2 > 2 * s1 - 64, "doubling samples ~doubles bytes");
        assert!(size(100, 100) > size(100, 10) * 5);
    }

    #[test]
    fn kind_names() {
        assert_eq!(
            Message::ModelUpdate { params: vec![] }.kind(),
            "model-update"
        );
        assert_eq!(
            Message::SampleSelection { ids: vec![] }.kind(),
            "sample-selection"
        );
    }
}
