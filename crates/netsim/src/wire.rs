//! Binary wire encoding.
//!
//! All primitives are little-endian and hand-rolled on `std` slices — the
//! codec has no dependencies, which keeps offline/vendored builds trivial.

/// Errors from decoding a wire payload.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the value was complete.
    UnexpectedEof,
    /// An unknown message tag was encountered.
    UnknownTag(u8),
    /// A declared length exceeds sanity limits.
    LengthOverflow(u64),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnexpectedEof => write!(f, "unexpected end of buffer"),
            Self::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            Self::LengthOverflow(n) => write!(f, "declared length {n} exceeds limit"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum element count accepted for any encoded collection (a decode-time
/// sanity bound against corrupted buffers).
pub(crate) const MAX_LEN: u64 = 1 << 28;

/// A type with a deterministic, byte-accurate binary encoding.
///
/// All quantities crossing the simulated network implement `Wire`; the
/// communication ledger charges exactly [`encoded_len`](Wire::encoded_len)
/// bytes per transfer, and `encode`/`decode` round-trip losslessly (verified
/// by property tests).
pub trait Wire: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `buf`, advancing it.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the buffer is truncated or malformed.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Exact number of bytes [`encode`](Wire::encode) will append.
    fn encoded_len(&self) -> usize;

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode(&mut buf);
        buf
    }
}

/// Splits `N` bytes off the front of `buf`, advancing it.
fn take<const N: usize>(buf: &mut &[u8]) -> Result<[u8; N], WireError> {
    if buf.len() < N {
        return Err(WireError::UnexpectedEof);
    }
    let (head, rest) = buf.split_at(N);
    *buf = rest;
    Ok(head.try_into().expect("split_at guarantees length"))
}

pub(crate) fn get_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    Ok(take::<1>(buf)?[0])
}

pub(crate) fn get_u32(buf: &mut &[u8]) -> Result<u32, WireError> {
    Ok(u32::from_le_bytes(take::<4>(buf)?))
}

pub(crate) fn get_f32(buf: &mut &[u8]) -> Result<f32, WireError> {
    Ok(f32::from_le_bytes(take::<4>(buf)?))
}

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Splits `n` raw bytes off the front of `buf` into a fresh vector.
pub(crate) fn get_bytes(buf: &mut &[u8], n: usize) -> Result<Vec<u8>, WireError> {
    if buf.len() < n {
        return Err(WireError::UnexpectedEof);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head.to_vec())
}

pub(crate) fn get_len(buf: &mut &[u8]) -> Result<usize, WireError> {
    let n = get_u32(buf)? as u64;
    if n > MAX_LEN {
        return Err(WireError::LengthOverflow(n));
    }
    Ok(n as usize)
}

pub(crate) fn put_f32_slice(buf: &mut Vec<u8>, values: &[f32]) {
    put_u32(buf, values.len() as u32);
    for &v in values {
        put_f32(buf, v);
    }
}

pub(crate) fn get_f32_vec(buf: &mut &[u8]) -> Result<Vec<f32>, WireError> {
    let n = get_len(buf)?;
    if buf.len() < n * 4 {
        return Err(WireError::UnexpectedEof);
    }
    (0..n).map(|_| get_f32(buf)).collect()
}

pub(crate) fn put_u32_slice(buf: &mut Vec<u8>, values: &[u32]) {
    put_u32(buf, values.len() as u32);
    for &v in values {
        put_u32(buf, v);
    }
}

pub(crate) fn get_u32_vec(buf: &mut &[u8]) -> Result<Vec<u32>, WireError> {
    let n = get_len(buf)?;
    if buf.len() < n * 4 {
        return Err(WireError::UnexpectedEof);
    }
    (0..n).map(|_| get_u32(buf)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_slice_round_trip() {
        let values = vec![1.0f32, -2.5, f32::MAX, 0.0];
        let mut buf = Vec::new();
        put_f32_slice(&mut buf, &values);
        let mut slice = buf.as_slice();
        let decoded = get_f32_vec(&mut slice).unwrap();
        assert_eq!(decoded, values);
        assert!(slice.is_empty());
    }

    #[test]
    fn u32_slice_round_trip() {
        let values = vec![0u32, 7, u32::MAX];
        let mut buf = Vec::new();
        put_u32_slice(&mut buf, &values);
        let mut slice = buf.as_slice();
        assert_eq!(get_u32_vec(&mut slice).unwrap(), values);
    }

    #[test]
    fn truncated_buffer_is_an_error() {
        let mut buf = Vec::new();
        put_f32_slice(&mut buf, &[1.0, 2.0]);
        buf.truncate(buf.len() - 1);
        let mut slice = buf.as_slice();
        assert_eq!(get_f32_vec(&mut slice), Err(WireError::UnexpectedEof));
    }

    #[test]
    fn absurd_length_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut slice = buf.as_slice();
        assert!(matches!(
            get_f32_vec(&mut slice),
            Err(WireError::LengthOverflow(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(!WireError::UnexpectedEof.to_string().is_empty());
        assert!(!WireError::UnknownTag(9).to_string().is_empty());
        assert!(!WireError::LengthOverflow(1).to_string().is_empty());
    }
}
