//! Deterministic Byzantine-adversary injection.
//!
//! The fault model of [`FaultPlan`](crate::FaultPlan) covers clients that
//! *disappear*; this module covers clients that *show up and lie*. An
//! [`Attack`] describes what a Byzantine client does to its upload —
//! flipping logit rankings, faking confidence, poisoning prototypes, or
//! shipping outright garbage (non-finite values, wrong-shape payloads) —
//! and a [`RoundContext`] bundles the round's surviving [`Cohort`] with the
//! per-client attack roster so algorithms can apply the corruption to
//! uploads *before* the server sees them.
//!
//! Every stochastic corruption draws from a dedicated
//! `(seed, round, client)` RNG stream, so a run with adversaries replays
//! bit-identically from its seed: the same plan, seed, and round always
//! produce the same corrupted bytes, independent of cohort size or the
//! order in which clients are processed.
//!
//! The corruption functions operate on the raw row-major `f32` buffers that
//! cross the simulated wire, keeping this crate free of any tensor
//! dependency; the algorithm layer rebuilds its typed payloads from the
//! mutated buffers.

use crate::fault::Cohort;
use fedpkd_rng::Rng;

/// What a Byzantine client does to its upload.
///
/// The first two target logit payloads, the next two target prototype
/// payloads, and the last two corrupt any payload indiscriminately (the
/// classic "malformed bytes" failure a real server must survive). Attacks
/// on payload kinds they do not target are no-ops, so a single variant per
/// client suffices.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Attack {
    /// Negate every logit row: the ranking reverses, so the argmin becomes
    /// the argmax — a label-flip poisoner that stays perfectly "confident"
    /// and therefore earns a large Eq. 7 variance weight.
    LogitLabelFlip,
    /// Multiply logits by this factor (> 1 fakes overconfidence, again
    /// inflating the client's variance weight; < 0 composes a flip).
    LogitScale(f32),
    /// Add seeded Gaussian noise with this standard deviation to every
    /// prototype coordinate.
    PrototypeNoise(f32),
    /// Negate every prototype vector, pulling the Eq. 8 class means toward
    /// the feature-space antipode.
    PrototypeSignFlip,
    /// Replace part of every payload with NaN/Inf garbage.
    NonFinitePayload,
    /// Ship payload vectors of the wrong width (one extra column per logit
    /// row, one extra coordinate per prototype/update vector).
    WrongShapePayload,
}

impl Attack {
    /// The snake_case name used in serialized telemetry and logs.
    pub fn name(self) -> &'static str {
        match self {
            Self::LogitLabelFlip => "logit_label_flip",
            Self::LogitScale(_) => "logit_scale",
            Self::PrototypeNoise(_) => "prototype_noise",
            Self::PrototypeSignFlip => "prototype_sign_flip",
            Self::NonFinitePayload => "non_finite_payload",
            Self::WrongShapePayload => "wrong_shape_payload",
        }
    }

    /// Corrupts a row-major `rows × cols` logits buffer in place and
    /// returns the (possibly changed) column count —
    /// [`Attack::WrongShapePayload`] appends a junk column to every row.
    /// Prototype-only attacks leave the buffer untouched.
    pub fn corrupt_logits(
        self,
        rng: &mut Rng,
        values: &mut Vec<f32>,
        rows: usize,
        cols: usize,
    ) -> usize {
        debug_assert_eq!(values.len(), rows * cols, "buffer must be rows*cols");
        match self {
            Self::LogitLabelFlip => {
                for v in values.iter_mut() {
                    *v = -*v;
                }
                cols
            }
            Self::LogitScale(factor) => {
                for v in values.iter_mut() {
                    *v *= factor;
                }
                cols
            }
            Self::PrototypeNoise(_) | Self::PrototypeSignFlip => cols,
            Self::NonFinitePayload => {
                poison_non_finite(rng, values);
                cols
            }
            Self::WrongShapePayload => {
                let mut widened = Vec::with_capacity(rows * (cols + 1));
                for row in values.chunks(cols.max(1)) {
                    widened.extend_from_slice(row);
                    widened.push(rng.next_f32());
                }
                *values = widened;
                cols + 1
            }
        }
    }

    /// Corrupts a single prototype (or any per-class feature) vector in
    /// place. Logit-only attacks are no-ops.
    pub fn corrupt_prototype(self, rng: &mut Rng, vector: &mut Vec<f32>) {
        match self {
            Self::LogitLabelFlip | Self::LogitScale(_) => {}
            Self::PrototypeNoise(std) => {
                for v in vector.iter_mut() {
                    *v += std * rng.standard_normal() as f32;
                }
            }
            Self::PrototypeSignFlip => {
                for v in vector.iter_mut() {
                    *v = -*v;
                }
            }
            Self::NonFinitePayload => poison_non_finite(rng, vector),
            Self::WrongShapePayload => vector.push(rng.next_f32()),
        }
    }

    /// Corrupts a flat model-parameter upload in place (the FedAvg/FedProx
    /// payload). Logit and prototype attacks map to their closest
    /// parameter-space analogue: label-flip and sign-flip negate the
    /// update, scaling scales it, and noise perturbs it.
    pub fn corrupt_update(self, rng: &mut Rng, params: &mut Vec<f32>) {
        match self {
            Self::LogitLabelFlip | Self::PrototypeSignFlip => {
                for v in params.iter_mut() {
                    *v = -*v;
                }
            }
            Self::LogitScale(factor) => {
                for v in params.iter_mut() {
                    *v *= factor;
                }
            }
            Self::PrototypeNoise(std) => {
                for v in params.iter_mut() {
                    *v += std * rng.standard_normal() as f32;
                }
            }
            Self::NonFinitePayload => poison_non_finite(rng, params),
            Self::WrongShapePayload => params.push(rng.next_f32()),
        }
    }
}

/// Overwrites a random ~quarter of the buffer (at least one entry) with a
/// mix of NaN and ±Inf.
fn poison_non_finite(rng: &mut Rng, values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let hits = (values.len() / 4).max(1);
    for _ in 0..hits {
        let idx = rng.range_usize(0, values.len());
        values[idx] = match rng.range_usize(0, 3) {
            0 => f32::NAN,
            1 => f32::INFINITY,
            _ => f32::NEG_INFINITY,
        };
    }
}

/// Salt separating attack RNG streams from the dropout streams that share
/// the plan's seed.
const ATTACK_STREAM_SALT: u64 = 0x00B1_2A47_5EED_0DD5;

/// Everything an algorithm needs to know about one round's environment:
/// which clients participate (the [`Cohort`]) and which of the survivors
/// are Byzantine (the attack roster), plus the seed that makes their
/// corruption replayable.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundContext {
    cohort: Cohort,
    attacks: Vec<Option<Attack>>,
    seed: u64,
    late: Vec<(usize, usize)>,
    worker_budget: Option<usize>,
}

impl RoundContext {
    /// A benign context: the given cohort, no adversaries.
    pub fn benign(cohort: Cohort) -> Self {
        let n = cohort.num_clients();
        Self {
            cohort,
            attacks: vec![None; n],
            seed: 0,
            late: Vec::new(),
            worker_budget: None,
        }
    }

    /// A context with a per-client attack roster (index = client id;
    /// `None` = honest). `seed` roots the corruption RNG streams.
    pub fn with_attacks(cohort: Cohort, attacks: Vec<Option<Attack>>, seed: u64) -> Self {
        Self {
            cohort,
            attacks,
            seed,
            late: Vec::new(),
            worker_budget: None,
        }
    }

    /// Restricts the cohort to a sampled invite list (see
    /// [`Cohort::restrict_to_sample`](crate::Cohort::restrict_to_sample));
    /// the attack roster and seed are untouched, since a Byzantine client
    /// that is not invited simply never gets to upload.
    pub fn restrict_to_sample(mut self, sampled: &[usize]) -> Self {
        self.cohort = self.cohort.restrict_to_sample(sampled);
        self
    }

    /// Replaces the late-arrival roster: `(client, lag)` pairs for clients
    /// that missed this round's deadline but whose upload the driver will
    /// accept `lag` rounds late (bounded-staleness async mode). Late
    /// clients remain *dropped* in the cohort — they contribute nothing to
    /// this round's aggregation — but an algorithm that supports staleness
    /// may train them and queue their upload for arrival.
    pub fn with_late_arrivals(mut self, late: Vec<(usize, usize)>) -> Self {
        self.late = late;
        self
    }

    /// Sets the driver's worker budget for this round's client phase
    /// (`None` = let the algorithm pick, typically the machine's available
    /// parallelism).
    pub fn with_worker_budget(mut self, workers: Option<usize>) -> Self {
        self.worker_budget = workers;
        self
    }

    /// The round's late-arrival roster: `(client, lag)` pairs, ascending by
    /// client. Empty in synchronous mode.
    pub fn late_arrivals(&self) -> &[(usize, usize)] {
        &self.late
    }

    /// The staleness lag for `client` if it is on this round's late-arrival
    /// roster.
    pub fn late_lag(&self, client: usize) -> Option<usize> {
        self.late
            .iter()
            .find(|&&(c, _)| c == client)
            .map(|&(_, lag)| lag)
    }

    /// The driver's worker budget for this round, if it set one.
    pub fn worker_budget(&self) -> Option<usize> {
        self.worker_budget
    }

    /// The round's participation cohort.
    pub fn cohort(&self) -> &Cohort {
        &self.cohort
    }

    /// The attack `client` mounts this round, or `None` if it is honest
    /// (or out of range).
    pub fn attack(&self, client: usize) -> Option<Attack> {
        self.attacks.get(client).copied().flatten()
    }

    /// Whether any client in the roster is adversarial.
    pub fn has_adversaries(&self) -> bool {
        self.attacks.iter().any(Option::is_some)
    }

    /// The dedicated corruption RNG stream for `(round, client)`.
    ///
    /// Keyed exactly like the dropout stream but under a different salt, so
    /// attack draws never correlate with fault draws and never depend on
    /// cohort size or evaluation order.
    pub fn attack_rng(&self, round: usize, client: usize) -> Rng {
        let round_seed = self
            .seed
            .wrapping_add(ATTACK_STREAM_SALT)
            .wrapping_add((round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Rng::stream(round_seed, client as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_flip_reverses_ranking() {
        let mut rng = Rng::seed_from_u64(1);
        let mut values = vec![3.0, 1.0, 2.0];
        let cols = Attack::LogitLabelFlip.corrupt_logits(&mut rng, &mut values, 1, 3);
        assert_eq!(cols, 3);
        assert_eq!(values, vec![-3.0, -1.0, -2.0]);
    }

    #[test]
    fn scale_multiplies() {
        let mut rng = Rng::seed_from_u64(1);
        let mut values = vec![1.0, -2.0];
        Attack::LogitScale(10.0).corrupt_logits(&mut rng, &mut values, 1, 2);
        assert_eq!(values, vec![10.0, -20.0]);
    }

    #[test]
    fn wrong_shape_appends_a_column_per_row() {
        let mut rng = Rng::seed_from_u64(2);
        let mut values = vec![1.0, 2.0, 3.0, 4.0];
        let cols = Attack::WrongShapePayload.corrupt_logits(&mut rng, &mut values, 2, 2);
        assert_eq!(cols, 3);
        assert_eq!(values.len(), 6);
        assert_eq!((values[0], values[1]), (1.0, 2.0));
        assert_eq!((values[3], values[4]), (3.0, 4.0));
    }

    #[test]
    fn non_finite_poisons_at_least_one_entry() {
        let mut rng = Rng::seed_from_u64(3);
        let mut values = vec![0.5f32; 8];
        Attack::NonFinitePayload.corrupt_logits(&mut rng, &mut values, 2, 4);
        assert!(values.iter().any(|v| !v.is_finite()));
    }

    #[test]
    fn prototype_attacks_leave_logits_alone_and_vice_versa() {
        let mut rng = Rng::seed_from_u64(4);
        let mut values = vec![1.0, 2.0];
        Attack::PrototypeSignFlip.corrupt_logits(&mut rng, &mut values, 1, 2);
        assert_eq!(values, vec![1.0, 2.0]);
        let mut proto = vec![1.0, 2.0];
        Attack::LogitLabelFlip.corrupt_prototype(&mut rng, &mut proto);
        assert_eq!(proto, vec![1.0, 2.0]);
        Attack::PrototypeSignFlip.corrupt_prototype(&mut rng, &mut proto);
        assert_eq!(proto, vec![-1.0, -2.0]);
    }

    #[test]
    fn prototype_noise_is_seed_deterministic() {
        let corrupt = || {
            let mut rng = Rng::stream(9, 4);
            let mut v = vec![0.0f32; 6];
            Attack::PrototypeNoise(0.5).corrupt_prototype(&mut rng, &mut v);
            v
        };
        let a = corrupt();
        assert_eq!(a, corrupt());
        assert!(a.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn update_corruption_covers_every_attack() {
        let base = vec![1.0f32, -1.0, 0.5];
        for attack in [
            Attack::LogitLabelFlip,
            Attack::LogitScale(2.0),
            Attack::PrototypeNoise(1.0),
            Attack::PrototypeSignFlip,
            Attack::NonFinitePayload,
            Attack::WrongShapePayload,
        ] {
            let mut rng = Rng::seed_from_u64(7);
            let mut params = base.clone();
            attack.corrupt_update(&mut rng, &mut params);
            assert!(
                params != base || params.len() != base.len(),
                "{attack:?} must change the update"
            );
        }
    }

    #[test]
    fn context_replays_identical_corruption() {
        let ctx = RoundContext::with_attacks(
            Cohort::full(3),
            vec![None, Some(Attack::NonFinitePayload), None],
            42,
        );
        let run = |ctx: &RoundContext| {
            let mut rng = ctx.attack_rng(5, 1);
            let mut v = vec![1.0f32; 16];
            Attack::NonFinitePayload.corrupt_prototype(&mut rng, &mut v);
            v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        };
        assert_eq!(run(&ctx), run(&ctx));
    }

    #[test]
    fn context_accessors() {
        let ctx = RoundContext::benign(Cohort::full(2));
        assert!(!ctx.has_adversaries());
        assert_eq!(ctx.attack(0), None);
        assert_eq!(ctx.attack(9), None, "out of range is honest");
        let ctx = RoundContext::with_attacks(
            Cohort::full(2),
            vec![Some(Attack::LogitLabelFlip), None],
            1,
        );
        assert!(ctx.has_adversaries());
        assert_eq!(ctx.attack(0), Some(Attack::LogitLabelFlip));
        assert_eq!(ctx.cohort().num_clients(), 2);
    }

    #[test]
    fn attack_rng_differs_from_dropout_stream() {
        // Same seed, same (round, client): the salted attack stream must
        // not reproduce the dropout stream's draws.
        let seed = 11u64;
        let round = 3usize;
        let ctx = RoundContext::with_attacks(Cohort::full(1), vec![None], seed);
        let mut attack = ctx.attack_rng(round, 0);
        let round_seed = seed.wrapping_add((round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut dropout = Rng::stream(round_seed, 0);
        assert_ne!(attack.next_u64(), dropout.next_u64());
    }

    #[test]
    fn attack_names() {
        assert_eq!(Attack::LogitLabelFlip.name(), "logit_label_flip");
        assert_eq!(Attack::LogitScale(2.0).name(), "logit_scale");
        assert_eq!(Attack::PrototypeNoise(0.1).name(), "prototype_noise");
        assert_eq!(Attack::PrototypeSignFlip.name(), "prototype_sign_flip");
        assert_eq!(Attack::NonFinitePayload.name(), "non_finite_payload");
        assert_eq!(Attack::WrongShapePayload.name(), "wrong_shape_payload");
    }
}
