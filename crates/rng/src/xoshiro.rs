//! Xoshiro256++ — the workhorse generator of the simulation stack.

use crate::splitmix::SplitMix64;

/// A deterministic random number generator (Xoshiro256++).
///
/// All stochastic behaviour in the FedPKD reproduction flows through this
/// type. It is seeded from a single `u64` via SplitMix64, supports cheap
/// forking into statistically independent substreams (so parallel clients
/// stay deterministic regardless of scheduling), and offers the sampling
/// helpers the simulation needs.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(99);
/// let die = rng.range_usize(0, 6);
/// assert!(die < 6);
///
/// // Fork substreams for parallel workers; each fork is independent but
/// // reproducible from the parent seed.
/// let mut worker = rng.fork();
/// let _ = worker.next_f32();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The 256-bit internal state is expanded from the seed with SplitMix64,
    /// as the xoshiro authors recommend, so nearby seeds still produce
    /// unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Creates a generator for a named substream of a base seed.
    ///
    /// `Rng::stream(seed, id)` is deterministic in `(seed, id)` and distinct
    /// streams are statistically independent. Use this to give each simulated
    /// client its own generator derived from the experiment seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use fedpkd_rng::Rng;
    /// let a = Rng::stream(7, 0);
    /// let b = Rng::stream(7, 1);
    /// assert_ne!(a, b);
    /// ```
    pub fn stream(seed: u64, stream_id: u64) -> Self {
        // Mix the stream id through SplitMix64 so that (seed, id) and
        // (seed + 1, id - 1) do not collide.
        let mut sm = SplitMix64::new(seed);
        let base = sm.next_u64();
        let mut sm2 = SplitMix64::new(base ^ stream_id.wrapping_mul(0xA076_1D64_78BD_642F));
        let s = [
            sm2.next_u64(),
            sm2.next_u64(),
            sm2.next_u64(),
            sm2.next_u64(),
        ];
        Self { s }
    }

    /// Draws a fresh, independent generator from this one.
    ///
    /// The fork is seeded from the parent's output stream, so a sequence of
    /// forks is itself deterministic.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    /// The raw 256-bit xoshiro state, for checkpointing.
    ///
    /// Together with [`from_state`](Self::from_state) this makes a
    /// generator's position in its stream an explicit value: save the state,
    /// keep drawing, restore it later (possibly in another process), and the
    /// restored generator reproduces the exact same draws.
    ///
    /// # Examples
    ///
    /// ```
    /// use fedpkd_rng::Rng;
    ///
    /// let mut rng = Rng::seed_from_u64(7);
    /// let _ = rng.next_u64();
    /// let saved = rng.state();
    /// let expected = rng.next_u64();
    /// let mut resumed = Rng::from_state(saved);
    /// assert_eq!(resumed.next_u64(), expected);
    /// ```
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with
    /// [`state`](Self::state).
    ///
    /// # Panics
    ///
    /// Panics if `s` is all zeros — the one state xoshiro256++ can never
    /// reach from a seeded generator (and from which it would only ever emit
    /// zeros). [`state`](Self::state) never returns it.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "the all-zero state is not a valid xoshiro256++ state"
        );
        Self { s }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)` with 24 bits of precision.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Returns a uniform `u64` in `[0, bound)` without modulo bias
    /// (Lemire's multiply-shift rejection method).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only entered when low < bound.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.bounded_u64((hi - lo) as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.next_f64() < p
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.bounded_u64((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Returns a reference to a uniformly chosen element, or `None` if the
    /// slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range_usize(0, slice.len())])
        }
    }

    /// Returns a standard normal deviate (mean 0, variance 1) via the
    /// Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_u64_respects_bound() {
        let mut rng = Rng::seed_from_u64(5);
        for bound in [1u64, 2, 3, 7, 100, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.bounded_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_u64_of_one_is_zero() {
        let mut rng = Rng::seed_from_u64(5);
        assert_eq!(rng.bounded_u64(1), 0);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_u64_zero_panics() {
        Rng::seed_from_u64(0).bounded_u64(0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = Rng::seed_from_u64(3);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [42u8];
        rng.shuffle(&mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Rng::seed_from_u64(4);
        assert_eq!(rng.choose::<u8>(&[]), None);
        assert_eq!(rng.choose(&[9]), Some(&9));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = Rng::seed_from_u64(2024);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Rng::seed_from_u64(8);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.25)).count();
        let freq = hits as f64 / 10_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn streams_are_distinct_and_deterministic() {
        let mut a1 = Rng::stream(1, 10);
        let mut a2 = Rng::stream(1, 10);
        let mut b = Rng::stream(1, 11);
        let s1: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let s3: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn forks_differ_from_parent_stream() {
        let mut parent = Rng::seed_from_u64(77);
        let mut fork = parent.fork();
        let pv: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let fv: Vec<u64> = (0..8).map(|_| fork.next_u64()).collect();
        assert_ne!(pv, fv);
    }

    #[test]
    fn range_usize_covers_all_values() {
        let mut rng = Rng::seed_from_u64(6);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.range_usize(0, 5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    /// Xoshiro256++ reference vector: state seeded with SplitMix64(0)
    /// produces a stream we can cross-check for regression protection.
    #[test]
    fn stream_is_stable_across_versions() {
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        // Snapshot taken at crate creation; protects against accidental
        // algorithm edits that would invalidate recorded experiment numbers.
        let mut again = Rng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
    }
}
