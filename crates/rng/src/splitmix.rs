//! SplitMix64: a tiny, fast generator used to expand seeds.

/// The SplitMix64 generator of Steele, Lea and Flood.
///
/// Primarily used to stretch a single `u64` seed into the 256-bit state of
/// [`crate::Rng`], but usable on its own when a minimal generator suffices
/// (it passes BigCrush yet has only 64 bits of state).
///
/// # Examples
///
/// ```
/// use fedpkd_rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(123);
/// let first = sm.next_u64();
/// assert_ne!(first, sm.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output and advances the state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 1234567, from the canonical C
    /// implementation (Vigna's `splitmix64.c`).
    #[test]
    fn matches_reference_vector() {
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
