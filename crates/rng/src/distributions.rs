//! Sampling distributions used by the synthetic-data and partitioning layers.

use crate::Rng;

/// A Gaussian distribution with configurable mean and standard deviation.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::{Normal, Rng};
///
/// let mut rng = Rng::seed_from_u64(1);
/// let n = Normal::new(5.0, 2.0).unwrap();
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution.
    ///
    /// # Errors
    ///
    /// Returns an error message if `std_dev` is negative or either parameter
    /// is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistributionError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistributionError::InvalidParameter);
        }
        Ok(Self { mean, std_dev })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.mean + self.std_dev * rng.standard_normal()
    }

    /// The mean parameter.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard-deviation parameter.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// A Bernoulli distribution over `{true, false}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p`.
    ///
    /// # Errors
    ///
    /// Returns an error if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, DistributionError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistributionError::InvalidParameter);
        }
        Ok(Self { p })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> bool {
        rng.bernoulli(self.p)
    }
}

/// A Gamma distribution, sampled with the Marsaglia–Tsang squeeze method.
///
/// Supports all positive shapes; shapes below one use the boosting identity
/// `Gamma(a) = Gamma(a + 1) · U^{1/a}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a Gamma distribution with the given shape and scale.
    ///
    /// # Errors
    ///
    /// Returns an error if either parameter is non-positive or non-finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, DistributionError> {
        if !(shape.is_finite() && scale.is_finite() && shape > 0.0 && scale > 0.0) {
            return Err(DistributionError::InvalidParameter);
        }
        Ok(Self { shape, scale })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        if self.shape < 1.0 {
            // Boost: sample Gamma(shape + 1) and scale by U^{1/shape}.
            let boosted = Gamma {
                shape: self.shape + 1.0,
                scale: self.scale,
            };
            let u = 1.0 - rng.next_f64(); // in (0, 1]
            return boosted.sample(rng) * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = rng.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = 1.0 - rng.next_f64(); // (0, 1]
                                          // Squeeze acceptance first, then the exact log test.
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v * self.scale;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * self.scale;
            }
        }
    }
}

/// A Dirichlet distribution over the probability simplex.
///
/// Used to generate non-IID label distributions across federated clients, as
/// in Hsu et al. (2019) and §V of the FedPKD paper.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::{Dirichlet, Rng};
///
/// let mut rng = Rng::seed_from_u64(3);
/// let d = Dirichlet::symmetric(0.5, 10).unwrap();
/// let p = d.sample(&mut rng);
/// let total: f64 = p.iter().sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dirichlet {
    alphas: Vec<f64>,
}

impl Dirichlet {
    /// Creates a Dirichlet distribution with the given concentration vector.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than two alphas are given or any alpha is
    /// non-positive or non-finite.
    pub fn new(alphas: Vec<f64>) -> Result<Self, DistributionError> {
        if alphas.len() < 2 || alphas.iter().any(|a| !a.is_finite() || *a <= 0.0) {
            return Err(DistributionError::InvalidParameter);
        }
        Ok(Self { alphas })
    }

    /// Creates a symmetric Dirichlet with `dim` components of concentration
    /// `alpha`.
    ///
    /// # Errors
    ///
    /// Returns an error if `dim < 2` or `alpha` is non-positive.
    pub fn symmetric(alpha: f64, dim: usize) -> Result<Self, DistributionError> {
        Self::new(vec![alpha; dim])
    }

    /// Draws one point on the simplex.
    pub fn sample(&self, rng: &mut Rng) -> Vec<f64> {
        let mut draws: Vec<f64> = self
            .alphas
            .iter()
            .map(|&a| {
                let g = Gamma::new(a, 1.0).expect("validated at construction");
                // Guard against numerically zero draws for tiny alphas.
                g.sample(rng).max(f64::MIN_POSITIVE)
            })
            .collect();
        let total: f64 = draws.iter().sum();
        for d in &mut draws {
            *d /= total;
        }
        draws
    }

    /// Number of components.
    pub fn dim(&self) -> usize {
        self.alphas.len()
    }
}

/// A categorical distribution over `0..k`, sampled in O(log k) by inverse
/// CDF lookup.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::{Categorical, Rng};
///
/// let mut rng = Rng::seed_from_u64(4);
/// let c = Categorical::new(&[0.1, 0.7, 0.2]).unwrap();
/// assert!(c.sample(&mut rng) < 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from unnormalized non-negative
    /// weights.
    ///
    /// # Errors
    ///
    /// Returns an error if `weights` is empty, contains a negative or
    /// non-finite entry, or sums to zero.
    pub fn new(weights: &[f64]) -> Result<Self, DistributionError> {
        if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(DistributionError::InvalidParameter);
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(DistributionError::InvalidParameter);
        }
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Pin the final entry so a draw of ~1.0 cannot fall off the end.
        *cdf.last_mut().expect("non-empty") = 1.0;
        Ok(Self { cdf })
    }

    /// Draws one category index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i,
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has zero categories (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Errors from distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DistributionError {
    /// A parameter was out of the distribution's valid domain.
    InvalidParameter,
}

impl std::fmt::Display for DistributionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidParameter => write!(f, "invalid distribution parameter"),
        }
    }
}

impl std::error::Error for DistributionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from_u64(10);
        let n = Normal::new(3.0, 0.5).unwrap();
        let k = 40_000;
        let xs: Vec<f64> = (0..k).map(|_| n.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / k as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / k as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn gamma_rejects_bad_params() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(-2.0, 1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = Rng::seed_from_u64(20);
        let g = Gamma::new(4.0, 2.0).unwrap();
        let k = 60_000;
        let xs: Vec<f64> = (0..k).map(|_| g.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / k as f64;
        // E[Gamma(a, s)] = a s = 8; Var = a s^2 = 16.
        assert!((mean - 8.0).abs() < 0.15, "mean {mean}");
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / k as f64;
        assert!((var - 16.0).abs() < 1.0, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = Rng::seed_from_u64(21);
        let g = Gamma::new(0.3, 1.0).unwrap();
        let k = 60_000;
        let xs: Vec<f64> = (0..k).map(|_| g.sample(&mut rng)).collect();
        assert!(xs.iter().all(|x| *x >= 0.0));
        let mean = xs.iter().sum::<f64>() / k as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn dirichlet_sums_to_one_and_is_positive() {
        let mut rng = Rng::seed_from_u64(30);
        for alpha in [0.1, 0.5, 1.0, 10.0] {
            let d = Dirichlet::symmetric(alpha, 10).unwrap();
            for _ in 0..50 {
                let p = d.sample(&mut rng);
                assert_eq!(p.len(), 10);
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                assert!(p.iter().all(|x| *x > 0.0));
            }
        }
    }

    #[test]
    fn dirichlet_small_alpha_concentrates() {
        // With alpha = 0.1 the mass should concentrate on few components;
        // with alpha = 100 it should be near-uniform. Compare max component.
        let mut rng = Rng::seed_from_u64(31);
        let sparse = Dirichlet::symmetric(0.1, 10).unwrap();
        let dense = Dirichlet::symmetric(100.0, 10).unwrap();
        let reps = 200;
        let avg_max = |d: &Dirichlet, rng: &mut Rng| {
            (0..reps)
                .map(|_| d.sample(rng).into_iter().fold(f64::MIN, f64::max))
                .sum::<f64>()
                / reps as f64
        };
        let m_sparse = avg_max(&sparse, &mut rng);
        let m_dense = avg_max(&dense, &mut rng);
        assert!(
            m_sparse > m_dense + 0.2,
            "sparse {m_sparse} dense {m_dense}"
        );
    }

    #[test]
    fn dirichlet_rejects_bad_params() {
        assert!(Dirichlet::new(vec![1.0]).is_err());
        assert!(Dirichlet::new(vec![1.0, 0.0]).is_err());
        assert!(Dirichlet::new(vec![1.0, -1.0]).is_err());
        assert!(Dirichlet::symmetric(0.5, 1).is_err());
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut rng = Rng::seed_from_u64(40);
        let c = Categorical::new(&[1.0, 3.0, 6.0]).unwrap();
        let mut counts = [0usize; 3];
        let n = 30_000;
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        let freqs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        assert!((freqs[0] - 0.1).abs() < 0.01, "{freqs:?}");
        assert!((freqs[1] - 0.3).abs() < 0.015, "{freqs:?}");
        assert!((freqs[2] - 0.6).abs() < 0.015, "{freqs:?}");
    }

    #[test]
    fn categorical_zero_weight_class_never_sampled() {
        let mut rng = Rng::seed_from_u64(41);
        let c = Categorical::new(&[0.0, 1.0, 0.0]).unwrap();
        for _ in 0..1000 {
            assert_eq!(c.sample(&mut rng), 1);
        }
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[1.0, -0.5]).is_err());
        assert!(Categorical::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn bernoulli_bounds() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
        let mut rng = Rng::seed_from_u64(50);
        let always = Bernoulli::new(1.0).unwrap();
        let never = Bernoulli::new(0.0).unwrap();
        for _ in 0..100 {
            assert!(always.sample(&mut rng));
            assert!(!never.sample(&mut rng));
        }
    }

    #[test]
    fn error_display_is_nonempty() {
        let msg = DistributionError::InvalidParameter.to_string();
        assert!(!msg.is_empty());
    }
}
