//! Subset-sampling helpers.

use crate::Rng;

/// Samples `k` distinct indices uniformly from `0..n`, in random order.
///
/// Uses a partial Fisher–Yates shuffle, which is O(n) time and memory; for
/// the dataset sizes in this simulator (≤ 10⁵) this is always cheap.
///
/// # Panics
///
/// Panics if `k > n`.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::{sample_indices, Rng};
///
/// let mut rng = Rng::seed_from_u64(7);
/// let picks = sample_indices(&mut rng, 100, 5);
/// assert_eq!(picks.len(), 5);
/// ```
pub fn sample_indices(rng: &mut Rng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.range_usize(i, n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Reservoir-samples `k` items from an iterator of unknown length
/// (Algorithm R).
///
/// Returns fewer than `k` items if the iterator is shorter than `k`.
///
/// # Examples
///
/// ```
/// use fedpkd_rng::{reservoir_sample, Rng};
///
/// let mut rng = Rng::seed_from_u64(9);
/// let picked = reservoir_sample(&mut rng, 0..1000, 10);
/// assert_eq!(picked.len(), 10);
/// ```
pub fn reservoir_sample<I, T>(rng: &mut Rng, iter: I, k: usize) -> Vec<T>
where
    I: IntoIterator<Item = T>,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.bounded_u64((i + 1) as u64) as usize;
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = Rng::seed_from_u64(1);
        let picks = sample_indices(&mut rng, 50, 20);
        assert_eq!(picks.len(), 20);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20, "duplicates in {picks:?}");
        assert!(picks.iter().all(|&i| i < 50));
    }

    #[test]
    fn sample_all_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(2);
        let mut picks = sample_indices(&mut rng, 10, 10);
        picks.sort_unstable();
        assert_eq!(picks, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sample_zero_is_empty() {
        let mut rng = Rng::seed_from_u64(3);
        assert!(sample_indices(&mut rng, 10, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let mut rng = Rng::seed_from_u64(4);
        sample_indices(&mut rng, 3, 4);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            for i in sample_indices(&mut rng, 10, 3) {
                counts[i] += 1;
            }
        }
        // Each index should be hit about 3000 times.
        for (i, &c) in counts.iter().enumerate() {
            assert!((2700..3300).contains(&c), "index {i}: {c}");
        }
    }

    #[test]
    fn reservoir_short_input_returns_all() {
        let mut rng = Rng::seed_from_u64(6);
        let got = reservoir_sample(&mut rng, 0..3, 10);
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn reservoir_k_zero() {
        let mut rng = Rng::seed_from_u64(6);
        let got: Vec<i32> = reservoir_sample(&mut rng, 0..100, 0);
        assert!(got.is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            for v in reservoir_sample(&mut rng, 0..20, 2) {
                counts[v] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((1700..2300).contains(&c), "value {i}: {c}");
        }
    }
}
