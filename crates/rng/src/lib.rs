//! Deterministic pseudo-random number generation for the FedPKD stack.
//!
//! Every stochastic component of the reproduction — synthetic data
//! generation, non-IID partitioning, weight initialization, mini-batch
//! shuffling — draws from this crate so that a single `u64` seed fully
//! determines an experiment, bit-for-bit, on every platform.
//!
//! The generator is [Xoshiro256++](https://prng.di.unimi.it/), seeded through
//! SplitMix64 as its authors recommend. On top of it the crate provides the
//! sampling routines the federated-learning simulation needs: uniform ranges,
//! Gaussians (Box–Muller), Gamma (Marsaglia–Tsang), Dirichlet (normalized
//! Gammas), categorical sampling, shuffling, and subset sampling.
//!
//! # Examples
//!
//! ```
//! use fedpkd_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let coin = rng.next_f64();
//! assert!((0.0..1.0).contains(&coin));
//!
//! // Deterministic: the same seed always yields the same stream.
//! let mut again = Rng::seed_from_u64(42);
//! assert_eq!(again.next_f64(), coin);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distributions;
mod sampling;
mod splitmix;
mod xoshiro;

pub use distributions::{Bernoulli, Categorical, Dirichlet, Gamma, Normal};
pub use sampling::{reservoir_sample, sample_indices};
pub use splitmix::SplitMix64;
pub use xoshiro::Rng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_determinism_across_constructions() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
