//! Property-based tests for the RNG crate.

use fedpkd_rng::{sample_indices, Categorical, Dirichlet, Gamma, Normal, Rng};
use proptest::prelude::*;

proptest! {
    /// Any seed yields values strictly inside the unit interval.
    #[test]
    fn unit_floats_stay_in_range(seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = rng.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
            let y = rng.next_f32();
            prop_assert!((0.0..1.0).contains(&y));
        }
    }

    /// Bounded sampling never reaches the bound, for any bound.
    #[test]
    fn bounded_u64_below_bound(seed in any::<u64>(), bound in 1u64..) {
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert!(rng.bounded_u64(bound) < bound);
        }
    }

    /// Shuffling preserves the multiset of elements.
    #[test]
    fn shuffle_preserves_elements(seed in any::<u64>(), mut v in prop::collection::vec(any::<i32>(), 0..200)) {
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        let mut rng = Rng::seed_from_u64(seed);
        rng.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }

    /// Index sampling returns exactly k distinct in-range indices.
    #[test]
    fn sample_indices_distinct((n, k) in (1usize..200).prop_flat_map(|n| (Just(n), 0..=n)), seed in any::<u64>()) {
        let mut rng = Rng::seed_from_u64(seed);
        let picks = sample_indices(&mut rng, n, k);
        prop_assert_eq!(picks.len(), k);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(picks.iter().all(|&i| i < n));
    }

    /// Dirichlet draws are valid points on the simplex for any positive
    /// alpha and dimension.
    #[test]
    fn dirichlet_on_simplex(alpha in 0.01f64..50.0, dim in 2usize..64, seed in any::<u64>()) {
        let d = Dirichlet::symmetric(alpha, dim).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        let p = d.sample(&mut rng);
        prop_assert_eq!(p.len(), dim);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|x| *x > 0.0 && x.is_finite()));
    }

    /// Gamma samples are non-negative and finite across the shape range.
    #[test]
    fn gamma_nonnegative(shape in 0.05f64..20.0, scale in 0.1f64..10.0, seed in any::<u64>()) {
        let g = Gamma::new(shape, scale).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..20 {
            let x = g.sample(&mut rng);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }

    /// Normal samples are finite for any finite parameters.
    #[test]
    fn normal_finite(mean in -1e3f64..1e3, std in 0.0f64..1e3, seed in any::<u64>()) {
        let n = Normal::new(mean, std).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert!(n.sample(&mut rng).is_finite());
        }
    }

    /// Categorical sampling only emits indices with positive weight.
    #[test]
    fn categorical_respects_support(
        weights in prop::collection::vec(0.0f64..10.0, 1..32),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let c = Categorical::new(&weights).unwrap();
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..100 {
            let i = c.sample(&mut rng);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "sampled zero-weight index {i}");
        }
    }

    /// Saving the raw xoshiro state mid-stream and restoring it resumes
    /// the exact same output sequence, whatever mix of draws preceded it.
    #[test]
    fn state_save_restore_resumes_identically(
        seed in any::<u64>(),
        warmup in 0usize..64,
        draws in 1usize..32,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        for i in 0..warmup {
            // Exercise differently sized draws so the saved state does not
            // depend on any single consumption pattern.
            match i % 3 {
                0 => { rng.next_u64(); }
                1 => { rng.next_f64(); }
                _ => { rng.bounded_u64(17); }
            }
        }
        let state = rng.state();
        let expected: Vec<u64> = (0..draws).map(|_| rng.next_u64()).collect();
        let mut restored = Rng::from_state(state);
        let resumed: Vec<u64> = (0..draws).map(|_| restored.next_u64()).collect();
        prop_assert_eq!(resumed, expected);
        // The restored generator stays in lockstep indefinitely, not just
        // for the first draw.
        prop_assert_eq!(restored.state(), rng.state());
    }

    /// Streams with different ids never collide on their first outputs.
    #[test]
    fn streams_are_distinct(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let mut ra = Rng::stream(seed, a);
        let mut rb = Rng::stream(seed, b);
        let va: Vec<u64> = (0..4).map(|_| ra.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| rb.next_u64()).collect();
        prop_assert_ne!(va, vb);
    }
}
