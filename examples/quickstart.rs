//! Quickstart: run FedPKD on a small non-IID federation and watch the
//! server and client models improve round by round.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fedpkd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a federated scenario: a 10-class CIFAR-like task split
    //    across 6 clients with a Dirichlet(0.3) non-IID partition, plus an
    //    unlabeled public pool and a global test set.
    let scenario = ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(6)
        .partition(Partition::Dirichlet { alpha: 0.3 })
        .samples(1_800)
        .public_size(400)
        .global_test_size(600)
        .seed(42)
        .build()?;
    println!(
        "scenario: {} clients, {} private samples, {} public, {} test",
        scenario.num_clients(),
        scenario.total_train_samples(),
        scenario.public.len(),
        scenario.global_test.len(),
    );

    // 2. Models: every client runs the ResNet20 analog; the server runs the
    //    larger ResNet56 analog (impossible under FedAvg, natural here).
    let client_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    };
    let server_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T56,
    };

    // 3. FedPKD with paper hyperparameters (θ = 0.7, δ = γ = ε = 0.5) and a
    //    laptop-scale epoch budget.
    let config = FedPkdConfig {
        client_private_epochs: 3,
        client_public_epochs: 2,
        server_epochs: 6,
        learning_rate: 0.002,
        ..FedPkdConfig::default()
    };
    let mut algo = FedPkd::new(scenario, vec![client_spec; 6], server_spec, config, 7)?;

    // 4. Run 8 communication rounds via the driver. (`run_silent` skips
    // telemetry; see the
    //    `telemetry` example for observing rounds as they happen.)
    let result = Driver::rounds(8).run_silent(&mut algo);
    println!("\n round | server acc | mean client acc | cumulative MB");
    println!(" ------+------------+-----------------+--------------");
    for m in &result.history {
        println!(
            "  {:>4} |    {:>6.2}% |         {:>6.2}% | {:>12.3}",
            m.round,
            m.server_accuracy.unwrap_or(0.0) * 100.0,
            m.mean_client_accuracy() * 100.0,
            bytes_to_mb(m.cumulative_bytes),
        );
    }
    println!(
        "\nbest server accuracy: {:.2}%  (chance is 10%)",
        result.best_server_accuracy().unwrap_or(0.0) * 100.0
    );
    Ok(())
}
