//! Non-IID showdown: sweep the Dirichlet concentration α and watch how
//! FedAvg degrades while FedPKD holds up — the motivating phenomenon of the
//! paper (Fig. 1) and its headline result (Figs. 5–6).
//!
//! ```sh
//! cargo run --release --example noniid_showdown
//! ```

use fedpkd::prelude::*;

const ROUNDS: usize = 6;
const SEED: u64 = 314;

fn scenario(alpha: f64) -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(5)
        .partition(Partition::Dirichlet { alpha })
        .samples(1_500)
        .public_size(400)
        .global_test_size(600)
        .seed(SEED)
        .build()
        .expect("valid scenario")
}

fn spec(tier: DepthTier) -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("sweeping non-IID severity (smaller α = more skew), {ROUNDS} rounds each\n");
    println!("   α   | FedAvg server | FedPKD server | FedPKD clients");
    println!(" ------+---------------+---------------+---------------");

    for alpha in [10.0, 1.0, 0.5, 0.1] {
        let mut avg = FedAvg::new(
            scenario(alpha),
            spec(DepthTier::T20),
            BaselineConfig {
                local_epochs: 3,
                learning_rate: 0.002,
                ..BaselineConfig::default()
            },
            SEED,
        )?;
        let avg_result = Driver::rounds(ROUNDS).run_silent(&mut avg);

        let mut pkd = FedPkd::new(
            scenario(alpha),
            vec![spec(DepthTier::T20); 5],
            spec(DepthTier::T56),
            FedPkdConfig {
                client_private_epochs: 3,
                client_public_epochs: 2,
                server_epochs: 6,
                learning_rate: 0.002,
                ..FedPkdConfig::default()
            },
            SEED,
        )?;
        let pkd_result = Driver::rounds(ROUNDS).run_silent(&mut pkd);

        println!(
            " {alpha:>5.2} |       {:>6.2}% |       {:>6.2}% |        {:>6.2}%",
            avg_result.best_server_accuracy().unwrap_or(0.0) * 100.0,
            pkd_result.best_server_accuracy().unwrap_or(0.0) * 100.0,
            pkd_result.best_client_accuracy() * 100.0,
        );
    }

    println!("\nExpected shape: both methods fall as α shrinks; FedPKD falls less.");
    Ok(())
}
