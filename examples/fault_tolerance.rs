//! Fault tolerance: FedPKD under deterministic client dropout, crashes,
//! and straggler deadlines.
//!
//! Builds one `FaultPlan` — 25% per-round dropout, a two-round crash of
//! client 1, and a cellular deadline that drops clients whose (slowed)
//! transfer misses it — and runs the same FedPKD federation with and
//! without it. The fault run costs strictly fewer bytes (dropped payloads
//! never travel), the server keeps learning from the survivors, and the
//! whole thing replays bit-identically from the plan's seed.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use fedpkd::prelude::*;

const ROUNDS: usize = 6;
const SEED: u64 = 23;

fn scenario() -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(4)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(1_200)
        .public_size(300)
        .global_test_size(400)
        .seed(SEED)
        .build()
        .expect("valid scenario")
}

fn federation() -> FedPkd {
    let tiers = [
        DepthTier::T11,
        DepthTier::T20,
        DepthTier::T20,
        DepthTier::T29,
    ];
    let client_specs: Vec<ModelSpec> = tiers
        .iter()
        .map(|&tier| ModelSpec::ResMlp {
            input_dim: 32,
            num_classes: 10,
            tier,
        })
        .collect();
    let server_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T56,
    };
    let config = FedPkdConfig {
        client_private_epochs: 3,
        client_public_epochs: 2,
        server_epochs: 6,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    };
    FedPkd::new(scenario(), client_specs, server_spec, config, SEED).expect("valid federation")
}

fn main() {
    // 25% dropout everywhere, client 1 crashed for rounds 2–3, and a
    // cellular-grade deadline that client 3 (slowed 3×) will miss once its
    // uplink size is known.
    let plan = FaultPlan::new(4)
        .with_dropout(0.25)
        .with_outage(1, 2, 2)
        .with_slowdown(3, 3.0)
        .with_deadline(LinkModel::cellular(), 2.0);

    let clean = Driver::rounds(ROUNDS).run_silent(&mut federation());

    let mut log = EventLog::new();
    let faulty = DriverBuilder::new()
        .rounds(ROUNDS)
        .faults(plan.clone())
        .build()
        .run(&mut federation(), &mut log);

    println!(" round | participation | server acc | round bytes | drops");
    for m in &faulty.history {
        let drops: Vec<String> = log
            .events()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::ClientDropped {
                    round,
                    client,
                    cause,
                } if *round == m.round => Some(format!("{client}:{}", cause.name())),
                _ => None,
            })
            .collect();
        println!(
            " {:>5} | {:>12.0}% | {:>9.3} | {:>11} | {}",
            m.round,
            m.participation_rate * 100.0,
            m.server_accuracy.unwrap_or(f64::NAN),
            faulty.ledger.round_traffic(m.round).total(),
            if drops.is_empty() {
                "-".to_string()
            } else {
                drops.join(" ")
            }
        );
    }

    println!(
        "\n fault-free: best server acc {:.3}, {:.3} MB total",
        clean.best_server_accuracy().unwrap_or(f64::NAN),
        bytes_to_mb(clean.ledger.total_bytes())
    );
    println!(
        " with plan : best server acc {:.3}, {:.3} MB total",
        faulty.best_server_accuracy().unwrap_or(f64::NAN),
        bytes_to_mb(faulty.ledger.total_bytes())
    );

    // The plan is pure data keyed by its seed: replaying it reproduces the
    // run bit for bit.
    let replay = DriverBuilder::new()
        .rounds(ROUNDS)
        .faults(plan)
        .build()
        .run_silent(&mut federation());
    assert_eq!(replay, faulty, "fault runs replay deterministically");
    println!(" replay    : bit-identical ✓");
}
