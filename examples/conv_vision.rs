//! Convolutional path: run FedPKD on *image-mode* synthetic data with the
//! residual conv-net models — the pipeline the paper's CIFAR experiments
//! would use with real pixels.
//!
//! Smaller than the other examples (convolutions are the slow path of a
//! from-scratch library), but it exercises every FedPKD mechanism on
//! `[n, c, h, w]` tensors end to end.
//!
//! ```sh
//! cargo run --release --example conv_vision
//! ```

use fedpkd::data::DataMode;
use fedpkd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let classes = 6;
    let config = SyntheticConfig {
        num_classes: classes,
        modes_per_class: 1,
        mode: DataMode::Image {
            channels: 3,
            size: 8,
        },
        class_separation: 3.0,
        mode_spread: 0.4,
        sample_noise: 0.6,
        label_noise: 0.0,
    };
    let scenario = ScenarioBuilder::new(config)
        .clients(3)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(720)
        .public_size(240)
        .global_test_size(180)
        .seed(5)
        .build()?;
    println!(
        "image-mode scenario: {} clients, 3×8×8 images, {} classes",
        scenario.num_clients(),
        classes
    );

    let client_spec = ModelSpec::ConvNet {
        in_channels: 3,
        image_size: 8,
        num_classes: classes,
        tier: DepthTier::T11,
    };
    let server_spec = ModelSpec::ConvNet {
        in_channels: 3,
        image_size: 8,
        num_classes: classes,
        tier: DepthTier::T20,
    };
    let config = FedPkdConfig {
        client_private_epochs: 6,
        client_public_epochs: 2,
        server_epochs: 8,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    };
    let mut algo = FedPkd::new(scenario, vec![client_spec; 3], server_spec, config, 11)?;
    let result = Driver::rounds(5).run_silent(&mut algo);

    println!("\n round | server acc | mean client acc");
    for m in &result.history {
        println!(
            "  {:>4} |    {:>6.2}% |         {:>6.2}%",
            m.round,
            m.server_accuracy.unwrap_or(0.0) * 100.0,
            m.mean_client_accuracy() * 100.0,
        );
    }
    println!(
        "\nconv-path FedPKD reaches {:.1}% (chance {:.1}%)",
        result.best_server_accuracy().unwrap_or(0.0) * 100.0,
        100.0 / classes as f64
    );
    Ok(())
}
