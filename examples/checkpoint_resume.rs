//! Checkpoint/resume: interrupt a 10-round FedPKD run at round 5 and
//! resume it from a serialized snapshot — bit-identically.
//!
//! The "reference" run drives all 10 rounds in one go. The "interrupted"
//! run drives 5 rounds, snapshots its complete state through the versioned
//! byte codec (exactly what `ckpt.bin` on disk would hold), and is then
//! dropped — the process crash. A fresh same-config instance restores the
//! bytes and drives the remaining 5 rounds. Because the whole stack is
//! deterministic and the snapshot captures every mutable word (client
//! models and Adam moments, server model/optimizer/RNG, global prototypes,
//! stale-prototype caches, quarantine streaks, the communication ledger,
//! and the fault-plan round position), the resumed half reproduces the
//! reference run's metrics, telemetry, and ledger bytes exactly — even
//! with dropout faults active across the interruption.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume
//! ```

use fedpkd::core::snapshot::AlgorithmState;
use fedpkd::prelude::*;

const ROUNDS: usize = 10;
const INTERRUPT_AT: usize = 5;
const SEED: u64 = 77;

fn scenario() -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(4)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(800)
        .public_size(200)
        .global_test_size(300)
        .seed(SEED)
        .build()
        .expect("valid scenario")
}

fn federation() -> FedPkd {
    let tiers = [
        DepthTier::T11,
        DepthTier::T20,
        DepthTier::T20,
        DepthTier::T29,
    ];
    let client_specs: Vec<ModelSpec> = tiers
        .iter()
        .map(|&tier| ModelSpec::ResMlp {
            input_dim: 32,
            num_classes: 10,
            tier,
        })
        .collect();
    let server_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T56,
    };
    let config = FedPkdConfig {
        client_private_epochs: 1,
        client_public_epochs: 1,
        server_epochs: 2,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    };
    FedPkd::new(scenario(), client_specs, server_spec, config, SEED).expect("valid federation")
}

fn main() {
    // Faults stay on across the interruption: the snapshot must carry the
    // plan's round position, not just the models.
    let plan = FaultPlan::new(13).with_dropout(0.2);

    println!("=== reference: {ROUNDS} rounds, uninterrupted ===");
    let full = DriverBuilder::new()
        .rounds(ROUNDS)
        .faults(plan.clone())
        .build()
        .run_silent(&mut federation());
    for m in &full.history {
        println!(
            "  round {:>2}  server acc {:.3}",
            m.round,
            m.server_accuracy.unwrap_or(f64::NAN)
        );
    }

    println!("\n=== interrupted: {INTERRUPT_AT} rounds, then snapshot + kill ===");
    let mut first_half = federation();
    // `snapshot_every` captures the checkpoint automatically at the round
    // boundary; `last_snapshot` hands back the newest one.
    let mut interrupted_driver = DriverBuilder::new()
        .rounds(INTERRUPT_AT)
        .faults(plan.clone())
        .snapshot_every(INTERRUPT_AT)
        .build();
    let _ = interrupted_driver.run_silent(&mut first_half);
    let checkpoint = interrupted_driver
        .last_snapshot()
        .expect("snapshot_every captured a checkpoint")
        .to_bytes();
    println!(
        "  snapshot after round {}: {} bytes (versioned, checksummed)",
        INTERRUPT_AT,
        checkpoint.len()
    );
    drop(first_half); // the crash — only the bytes survive

    println!("\n=== resume: fresh instance restores the bytes ===");
    let state = AlgorithmState::from_bytes(&checkpoint).expect("snapshot decodes");
    let mut resumed_algo = federation();
    let resumed = DriverBuilder::new()
        .rounds(ROUNDS - INTERRUPT_AT)
        .faults(plan)
        .build()
        .resume(&mut resumed_algo, &state, &mut NullObserver)
        .expect("restore succeeds");
    for m in &resumed.history {
        println!(
            "  round {:>2}  server acc {:.3}",
            m.round,
            m.server_accuracy.unwrap_or(f64::NAN)
        );
    }

    // The oracle: the resumed half must equal the reference run's back
    // half — per-round metrics and lifetime ledger, bit for bit.
    assert_eq!(
        resumed.history,
        full.history[INTERRUPT_AT..].to_vec(),
        "resumed metrics must match the uninterrupted run"
    );
    assert_eq!(
        resumed.ledger, full.ledger,
        "lifetime ledger must match the uninterrupted run"
    );
    let last = full.history.last().expect("history is non-empty");
    println!(
        "\nresume is bit-identical: final server accuracy {:.3}, {} ledger bytes",
        last.server_accuracy.unwrap_or(f64::NAN),
        full.ledger.total_bytes()
    );
}
