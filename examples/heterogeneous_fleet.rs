//! Heterogeneous fleet: clients run *different* model architectures sized
//! to their (simulated) hardware, and a large server model learns from all
//! of them — the deployment FedAvg cannot express.
//!
//! Compares FedPKD against the heterogeneity-capable baselines FedMD,
//! DS-FL, and FedET on the same scenario.
//!
//! ```sh
//! cargo run --release --example heterogeneous_fleet
//! ```

use fedpkd::prelude::*;

const ROUNDS: usize = 6;
const SEED: u64 = 2024;

fn scenario() -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(6)
        .partition(Partition::Dirichlet { alpha: 0.3 })
        .samples(1_800)
        .public_size(400)
        .global_test_size(600)
        .seed(SEED)
        .build()
        .expect("valid scenario")
}

/// A mixed fleet: two small-phone clients (T11), two mid-tier (T20), two
/// powerful edge boxes (T29).
fn client_specs() -> Vec<ModelSpec> {
    [
        DepthTier::T11,
        DepthTier::T11,
        DepthTier::T20,
        DepthTier::T20,
        DepthTier::T29,
        DepthTier::T29,
    ]
    .into_iter()
    .map(|tier| ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier,
    })
    .collect()
}

fn server_spec() -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T56,
    }
}

fn report(name: &str, result: &RunResult) {
    let server = result
        .best_server_accuracy()
        .map(|a| format!("{:>6.2}%", a * 100.0))
        .unwrap_or_else(|| "   n/a".to_string());
    println!(
        " {name:<8} | {server} |        {:>6.2}% | {:>10.3}",
        result.best_client_accuracy() * 100.0,
        bytes_to_mb(result.ledger.total_bytes()),
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("fleet: 2×ResNet11, 2×ResNet20, 2×ResNet29 clients; ResNet56 server");
    println!("partition: Dirichlet(0.3), {ROUNDS} rounds\n");
    println!(" method   | server acc | best client acc |   total MB");
    println!(" ---------+------------+-----------------+-----------");

    let pkd_config = FedPkdConfig {
        client_private_epochs: 3,
        client_public_epochs: 2,
        server_epochs: 6,
        learning_rate: 0.002,
        ..FedPkdConfig::default()
    };
    let mut fedpkd = FedPkd::new(scenario(), client_specs(), server_spec(), pkd_config, SEED)?;
    report("FedPKD", &Driver::rounds(ROUNDS).run_silent(&mut fedpkd));

    let base_config = BaselineConfig {
        local_epochs: 3,
        server_epochs: 6,
        digest_epochs: 2,
        learning_rate: 0.002,
        ..BaselineConfig::default()
    };
    let mut fedmd = FedMd::new(scenario(), client_specs(), base_config.clone(), SEED)?;
    report("FedMD", &Driver::rounds(ROUNDS).run_silent(&mut fedmd));

    let mut dsfl = DsFl::new(scenario(), client_specs(), base_config.clone(), SEED)?;
    report("DS-FL", &Driver::rounds(ROUNDS).run_silent(&mut dsfl));

    let mut fedet = FedEt::new(scenario(), client_specs(), server_spec(), base_config, SEED)?;
    report("FedET", &Driver::rounds(ROUNDS).run_silent(&mut fedet));

    println!("\nFedMD/DS-FL train no server model; FedET pays parameter-sized uplink.");
    Ok(())
}
