//! Byzantine robustness: FedPKD under active adversaries, with and without
//! its defenses.
//!
//! Seats two attackers in a five-client fleet — a label-flip poisoner
//! (finite, well-shaped, undetectable by admission control) and a
//! NaN-spewing client (caught at admission) — then runs the same federation
//! three ways: clean, attacked with the paper-faithful aggregation, and
//! attacked with admission control plus trimmed aggregation. The defended
//! run rejects the garbage payloads with typed telemetry, quarantines the
//! repeat offender, survives the label flipper, and replays bit-identically
//! from the plan's seed.
//!
//! ```sh
//! cargo run --release --example byzantine
//! ```

use fedpkd::prelude::*;

const ROUNDS: usize = 5;
const CLIENTS: usize = 5;
const SEED: u64 = 31;

fn scenario() -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(CLIENTS)
        // Near-IID: trimming presumes an agreeing honest majority (see
        // DESIGN.md §5d on why heavy skew erodes that premise).
        .partition(Partition::Dirichlet { alpha: 10.0 })
        .samples(1_500)
        .public_size(300)
        .global_test_size(400)
        .seed(SEED)
        .build()
        .expect("valid scenario")
}

fn federation(config: FedPkdConfig) -> FedPkd {
    let client_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T11,
    };
    let server_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T29,
    };
    FedPkd::new(
        scenario(),
        vec![client_spec; CLIENTS],
        server_spec,
        config,
        SEED,
    )
    .expect("valid federation")
}

fn base_config() -> FedPkdConfig {
    FedPkdConfig {
        client_private_epochs: 3,
        client_public_epochs: 2,
        server_epochs: 6,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    }
}

fn main() {
    // Client 2 flips its logits (stays finite and well-shaped — admission
    // cannot see it; only trimming can). Client 4 uploads NaN garbage every
    // round — admission rejects it and quarantines after three strikes.
    let plan = FaultPlan::new(9)
        .with_adversary(2, Attack::LogitLabelFlip)
        .with_adversary(4, Attack::NonFinitePayload);

    let clean = Driver::rounds(ROUNDS).run_silent(&mut federation(base_config()));

    // Truly undefended: admission off, paper-faithful aggregation — the
    // NaN payload flows straight into Eqs. 6–8 and poisons the teacher.
    let undefended_config = FedPkdConfig {
        admission: AdmissionPolicy {
            enabled: false,
            ..AdmissionPolicy::default()
        },
        ..base_config()
    };
    let undefended = DriverBuilder::new()
        .rounds(ROUNDS)
        .faults(plan.clone())
        .build()
        .run_silent(&mut federation(undefended_config));

    let defended_config = FedPkdConfig {
        robust: RobustAggregation::Trimmed {
            trim_fraction: 0.25,
        },
        ..base_config()
    };
    let mut log = EventLog::new();
    let defended = DriverBuilder::new()
        .rounds(ROUNDS)
        .faults(plan.clone())
        .build()
        .run(&mut federation(defended_config.clone()), &mut log);

    println!(" round | server acc | rejected payloads");
    for m in &defended.history {
        let rejected: Vec<String> = log
            .events()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::PayloadRejected {
                    round,
                    client,
                    payload,
                    reason,
                } if *round == m.round => {
                    Some(format!("{client}:{}/{}", payload.name(), reason.name()))
                }
                _ => None,
            })
            .collect();
        println!(
            " {:>5} | {:>9.3} | {}",
            m.round,
            m.server_accuracy.unwrap_or(f64::NAN),
            if rejected.is_empty() {
                "-".to_string()
            } else {
                rejected.join(" ")
            }
        );
    }

    for e in log.events() {
        if let TelemetryEvent::ClientQuarantined {
            round,
            client,
            consecutive,
        } = e
        {
            println!(
                "\n client {client} quarantined in round {round} after {consecutive} \
                 consecutive rejections"
            );
        }
    }

    let clean_acc = clean.best_server_accuracy().unwrap_or(f64::NAN);
    let undefended_acc = undefended.best_server_accuracy().unwrap_or(f64::NAN);
    let defended_acc = defended.best_server_accuracy().unwrap_or(f64::NAN);
    println!("\n clean (no adversaries)         : best server acc {clean_acc:.3}");
    println!(" attacked, paper-faithful Eq. 6-8: best server acc {undefended_acc:.3}");
    println!(" attacked, admission + trimming : best server acc {defended_acc:.3}");
    assert!(
        defended_acc > undefended_acc,
        "defenses must pay for themselves under attack"
    );

    // The attack roster is pure data keyed by the plan seed: the defended
    // run replays bit for bit.
    let replay = DriverBuilder::new()
        .rounds(ROUNDS)
        .faults(plan)
        .build()
        .run_silent(&mut federation(defended_config));
    assert_eq!(
        replay, defended,
        "adversarial runs replay deterministically"
    );
    println!(" replay                         : bit-identical ✓");
}
