//! Telemetry: watch a FedPKD run from the inside — stream every round's
//! events to a JSONL trace file and print a per-round summary of what the
//! prototype filter (Algorithm 1) and the server distillation (Eq. 13)
//! actually did.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```

use std::fs::File;
use std::io::BufWriter;

use fedpkd::prelude::*;

const ROUNDS: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(4)
        .partition(Partition::Dirichlet { alpha: 0.3 })
        .samples(1_200)
        .public_size(300)
        .global_test_size(400)
        .seed(21)
        .build()?;
    let client_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    };
    let server_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T56,
    };
    let config = FedPkdConfig {
        client_private_epochs: 3,
        client_public_epochs: 2,
        server_epochs: 6,
        learning_rate: 0.002,
        ..FedPkdConfig::default()
    };
    let mut algo = FedPkd::new(scenario, vec![client_spec; 4], server_spec, config, 9)?;

    // One run, two observers' worth of output: collect events in memory for
    // the summary below, and mirror each one to a JSONL trace on disk.
    let mut log = EventLog::new();
    let result = Driver::rounds(ROUNDS).run(&mut algo, &mut log);

    let trace_path = "fedpkd-trace.jsonl";
    let mut sink = JsonlSink::new(BufWriter::new(File::create(trace_path)?));
    for event in log.events() {
        sink.record(event);
    }
    sink.into_inner()?;
    println!(
        "wrote {} events ({} rounds) to {trace_path}\n",
        log.events().len(),
        ROUNDS
    );

    // Per-round filter acceptance: how much of the public set survived the
    // Eq. 10 prototype-distance test, and at what loss to the server.
    println!(" round | filter kept | acceptance |   L_kd |    L_p | Eq.13 F | server acc");
    println!(" ------+-------------+------------+--------+--------+---------+-----------");
    for round in 0..ROUNDS {
        let mut kept_dropped = None;
        let mut losses = None;
        let mut accuracy = None;
        for event in log.events().iter().filter(|e| e.round() == round) {
            match event {
                TelemetryEvent::FilterOutcome { kept, dropped, .. } => {
                    kept_dropped = Some((*kept, *dropped));
                }
                TelemetryEvent::ServerDistill {
                    kd_loss,
                    proto_loss,
                    combined_loss,
                    ..
                } => losses = Some((*kd_loss, *proto_loss, *combined_loss)),
                TelemetryEvent::RoundEnd {
                    server_accuracy, ..
                } => accuracy = *server_accuracy,
                _ => {}
            }
        }
        let (kept, dropped) = kept_dropped.expect("FedPKD filters every round");
        let (kd, proto, combined) = losses.expect("FedPKD distills every round");
        println!(
            "  {:>4} | {:>5}/{:<5} | {:>9.1}% | {:>6.3} | {:>6.3} | {:>7.3} | {:>9.2}%",
            round,
            kept,
            kept + dropped,
            100.0 * kept as f64 / (kept + dropped) as f64,
            kd,
            proto,
            combined,
            accuracy.unwrap_or(0.0) * 100.0,
        );
    }

    // Where the wall-clock went, summed over the run.
    println!("\nwall-clock by phase (all rounds):");
    for phase in [
        "client_training",
        "aggregation",
        "filter",
        "server_distill",
        "client_distill",
        "evaluation",
    ] {
        let total: f64 = log
            .events()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::PhaseTiming {
                    phase: p, seconds, ..
                } if p.name() == phase => Some(*seconds),
                _ => None,
            })
            .sum();
        println!("  {phase:<16} {total:>7.3} s");
    }
    println!(
        "\nbest server accuracy: {:.2}%  |  total traffic: {:.3} MB",
        result.best_server_accuracy().unwrap_or(0.0) * 100.0,
        bytes_to_mb(result.ledger.total_bytes()),
    );
    Ok(())
}
