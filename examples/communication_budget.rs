//! Communication budget: how many megabytes does each method spend to reach
//! a target accuracy, and what does that mean on a real uplink?
//!
//! Reproduces the logic behind Table I of the paper on a laptop-scale
//! scenario: run FedPKD, FedAvg, and FedMD to a target accuracy, read the
//! byte-accurate communication ledger, and convert the straggler's payload
//! into wall-clock transfer time over WiFi and cellular links.
//!
//! ```sh
//! cargo run --release --example communication_budget
//! ```

use fedpkd::prelude::*;

const ROUNDS: usize = 8;
const SEED: u64 = 99;
const TARGET: f64 = 0.45;

fn scenario() -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(5)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(1_500)
        .public_size(400)
        .global_test_size(600)
        .seed(SEED)
        .build()
        .expect("valid scenario")
}

fn spec() -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    }
}

fn describe(name: &str, result: &RunResult, client_target: bool) {
    let bytes = if client_target {
        result.bytes_to_client_accuracy(TARGET)
    } else {
        result.bytes_to_server_accuracy(TARGET)
    };
    let cost = bytes
        .map(|b| format!("{:>8.3} MB", bytes_to_mb(b)))
        .unwrap_or_else(|| "   not reached".to_string());
    // Straggler view: the slowest client's round-0 uplink over two links.
    let uplinks = result.ledger.round_client_uplinks(0, 5);
    let wifi = LinkModel::wifi().round_time(&uplinks);
    let lte = LinkModel::cellular().round_time(&uplinks);
    println!(" {name:<8} | {cost} | {:>9.3} s | {:>9.3} s", wifi, lte);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "target accuracy: {:.0}% | 5 clients, Dirichlet(0.5)\n",
        TARGET * 100.0
    );
    println!(" method   | bytes to target | wifi round | lte round");
    println!(" ---------+-----------------+------------+----------");

    let mut pkd = FedPkd::new(
        scenario(),
        vec![spec(); 5],
        ModelSpec::ResMlp {
            input_dim: 32,
            num_classes: 10,
            tier: DepthTier::T56,
        },
        FedPkdConfig {
            client_private_epochs: 3,
            client_public_epochs: 2,
            server_epochs: 6,
            learning_rate: 0.002,
            ..FedPkdConfig::default()
        },
        SEED,
    )?;
    describe(
        "FedPKD",
        &Driver::rounds(ROUNDS).run_silent(&mut pkd),
        false,
    );

    let base = BaselineConfig {
        local_epochs: 3,
        server_epochs: 6,
        digest_epochs: 2,
        learning_rate: 0.002,
        ..BaselineConfig::default()
    };
    let mut avg = FedAvg::new(scenario(), spec(), base.clone(), SEED)?;
    describe(
        "FedAvg",
        &Driver::rounds(ROUNDS).run_silent(&mut avg),
        false,
    );

    let mut md = FedMd::new(scenario(), vec![spec(); 5], base, SEED)?;
    describe("FedMD", &Driver::rounds(ROUNDS).run_silent(&mut md), true);

    println!("\nFedPKD ships logits + prototypes (KB); FedAvg ships parameters (100s of KB).");
    println!("FedMD has no server model, so its target is mean client accuracy.");
    Ok(())
}
