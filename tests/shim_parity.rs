//! Deprecated-shim parity oracle.
//!
//! The `#[deprecated]` entry points on [`FlAlgorithm`] (`run`,
//! `run_silent`, `run_silent_with_faults`, `take_snapshot`, `run_resumed`)
//! are thin shims over [`DriverBuilder`]. They configure only the knobs
//! they name — rounds and the fault plan — and must inherit every other
//! builder default (full cohort, automatic worker budget, zero staleness,
//! no periodic snapshots). If a future builder default drifts away from
//! what the shims assume, these tests fail: for FedPKD and all seven
//! baselines, a shim-driven run must be **bit-identical** to the
//! explicitly built driver — same round history, same ledger, and the same
//! final snapshot payload bytes.

#![allow(deprecated)]

use fedpkd::prelude::*;

const ROUNDS: usize = 2;

fn scenario() -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(3)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(240)
        .public_size(80)
        .global_test_size(80)
        .seed(67)
        .build()
        .expect("valid scenario")
}

fn client_spec() -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T11,
    }
}

fn server_spec() -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    }
}

fn plan() -> FaultPlan {
    FaultPlan::new(71)
        .with_dropout(0.25)
        .with_adversary(1, Attack::LogitScale(-1.5))
}

/// Shim vs. builder, fault-free and under faults: metrics, traffic, and
/// the final serialized state must all match bit-for-bit.
fn assert_shims_match_builder<A: Federation>(make: impl Fn() -> A) {
    // run_silent(n) ≡ DriverBuilder::new().rounds(n).build().run_silent.
    let mut via_shim = make();
    let shim_result = via_shim.run_silent(ROUNDS);
    let mut via_builder = make();
    let builder_result = DriverBuilder::new()
        .rounds(ROUNDS)
        .build()
        .run_silent(&mut via_builder);
    assert_eq!(shim_result.history, builder_result.history);
    assert_eq!(shim_result.ledger, builder_result.ledger);
    assert_eq!(
        via_shim.snapshot_state().to_bytes(),
        via_builder.snapshot_state().to_bytes(),
        "fault-free shim must leave bit-identical state"
    );

    // run_silent_with_faults(n, plan) ≡ builder with .faults(plan).
    let plan = plan();
    let mut via_shim = make();
    let shim_result = via_shim.run_silent_with_faults(ROUNDS, &plan);
    let mut via_builder = make();
    let builder_result = DriverBuilder::new()
        .rounds(ROUNDS)
        .faults(plan.clone())
        .build()
        .run_silent(&mut via_builder);
    assert_eq!(shim_result.history, builder_result.history);
    assert_eq!(shim_result.ledger, builder_result.ledger);
    assert_eq!(
        via_shim.snapshot_state().to_bytes(),
        via_builder.snapshot_state().to_bytes(),
        "faulted shim must leave bit-identical state"
    );
}

fn fedpkd() -> FedPkd {
    let config = FedPkdConfig {
        client_private_epochs: 1,
        client_public_epochs: 1,
        server_epochs: 1,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    };
    FedPkd::new(
        scenario(),
        vec![client_spec(); 3],
        server_spec(),
        config,
        73,
    )
    .expect("valid federation")
}

fn baseline_config() -> BaselineConfig {
    BaselineConfig {
        local_epochs: 1,
        digest_epochs: 1,
        server_epochs: 1,
        learning_rate: 0.003,
        ..BaselineConfig::default()
    }
}

#[test]
fn fedpkd_shims_match_builder() {
    assert_shims_match_builder(fedpkd);
}

#[test]
fn fedavg_shims_match_builder() {
    assert_shims_match_builder(|| {
        FedAvg::new(scenario(), client_spec(), baseline_config(), 79).unwrap()
    });
}

#[test]
fn fedprox_shims_match_builder() {
    assert_shims_match_builder(|| {
        FedProx::new(scenario(), client_spec(), baseline_config(), 83).unwrap()
    });
}

#[test]
fn fedmd_shims_match_builder() {
    assert_shims_match_builder(|| {
        FedMd::new(scenario(), vec![client_spec(); 3], baseline_config(), 89).unwrap()
    });
}

#[test]
fn dsfl_shims_match_builder() {
    assert_shims_match_builder(|| {
        DsFl::new(scenario(), vec![client_spec(); 3], baseline_config(), 97).unwrap()
    });
}

#[test]
fn feddf_shims_match_builder() {
    assert_shims_match_builder(|| {
        FedDf::new(scenario(), client_spec(), baseline_config(), 101).unwrap()
    });
}

#[test]
fn naive_kd_shims_match_builder() {
    assert_shims_match_builder(|| {
        NaiveKd::new(
            scenario(),
            vec![client_spec(); 3],
            server_spec(),
            baseline_config(),
            103,
        )
        .unwrap()
    });
}

#[test]
fn fedet_shims_match_builder() {
    assert_shims_match_builder(|| {
        FedEt::new(
            scenario(),
            vec![client_spec(); 3],
            server_spec(),
            baseline_config(),
            107,
        )
        .unwrap()
    });
}

/// The snapshot/resume shim pair must match the Driver entry points too:
/// `take_snapshot` + `run_resumed` replays exactly what
/// `Driver::snapshot` + `Driver::resume` replays.
#[test]
fn snapshot_shims_match_driver_entry_points() {
    let plan = plan();

    let mut shim_algo = fedpkd();
    let _ = shim_algo.run_silent_with_faults(ROUNDS, &plan);
    let shim_state = shim_algo.take_snapshot(&mut NullObserver);
    let mut shim_resumed = fedpkd();
    let shim_result = shim_resumed
        .run_resumed(&shim_state, ROUNDS, Some(&plan), &mut NullObserver)
        .expect("shim resume");

    let mut driver_algo = fedpkd();
    let builder = || {
        DriverBuilder::new()
            .rounds(ROUNDS)
            .faults(plan.clone())
            .build()
    };
    let _ = builder().run_silent(&mut driver_algo);
    let driver_state = Driver::snapshot(&driver_algo, &mut NullObserver);
    let mut driver_resumed = fedpkd();
    let driver_result = builder()
        .resume(&mut driver_resumed, &driver_state, &mut NullObserver)
        .expect("driver resume");

    assert_eq!(shim_state.to_bytes(), driver_state.to_bytes());
    assert_eq!(shim_result.history, driver_result.history);
    assert_eq!(shim_result.ledger, driver_result.ledger);
}
