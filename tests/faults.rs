//! Integration tests for the fault-injection subsystem: deterministic
//! replay, graceful degradation of FedPKD under partial participation, and
//! zero-survivor rounds that complete without touching any state.

use fedpkd::prelude::*;

const SEED: u64 = 9090;

fn scenario() -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(3)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(360)
        .public_size(120)
        .global_test_size(150)
        .seed(11)
        .build()
        .expect("valid scenario")
}

fn fedpkd() -> FedPkd {
    let client_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T11,
    };
    let server_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    };
    let config = FedPkdConfig {
        client_private_epochs: 2,
        client_public_epochs: 1,
        server_epochs: 3,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    };
    FedPkd::new(scenario(), vec![client_spec; 3], server_spec, config, SEED)
        .expect("valid federation")
}

/// The reproducibility contract of the fault layer: the same algorithm
/// seeding plus the same `FaultPlan` yields a bit-identical `RunResult` —
/// history, accuracies, and ledger.
#[test]
fn same_seed_and_plan_replays_bit_identically() {
    let plan = FaultPlan::new(77).with_dropout(0.3);
    let mut driver = DriverBuilder::new().rounds(3).faults(plan).build();
    let a = driver.run_silent(&mut fedpkd());
    let b = driver.run_silent(&mut fedpkd());
    assert_eq!(a, b, "fault-injected runs must replay exactly");
}

/// FedPKD degrades gracefully under 30% dropout: the run completes, the
/// server still improves over its round-0 accuracy, and the ledger charges
/// strictly fewer bytes than the fault-free run because dropped clients'
/// payloads never traveled.
#[test]
fn fedpkd_improves_under_dropout_with_fewer_bytes() {
    let rounds = 3;
    let clean = Driver::rounds(rounds).run_silent(&mut fedpkd());

    let plan = FaultPlan::new(21).with_dropout(0.3);
    let mut log = EventLog::new();
    let faulty = DriverBuilder::new()
        .rounds(rounds)
        .faults(plan)
        .build()
        .run(&mut fedpkd(), &mut log);

    // The chosen plan seed actually drops someone (otherwise the test
    // would vacuously pass); fault evaluation is deterministic, so this is
    // a fixed property of seed 21, not a flaky draw.
    let drops = log
        .events()
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::ClientDropped { .. }))
        .count();
    assert!(drops > 0, "plan seed must produce at least one drop");
    assert!(
        faulty.ledger.total_bytes() < clean.ledger.total_bytes(),
        "dropped payloads must not be billed: faulty {} vs clean {}",
        faulty.ledger.total_bytes(),
        clean.ledger.total_bytes()
    );

    let start = faulty.history[0]
        .server_accuracy
        .expect("FedPKD has a server model");
    let best = faulty
        .best_server_accuracy()
        .expect("FedPKD has a server model");
    assert!(
        best > start,
        "server must still improve under 30% dropout: round 0 {start}, best {best}"
    );
}

/// A round in which *every* client is out completes without panicking: the
/// round is framed in telemetry with participation 0, no bytes are charged,
/// and training resumes the next round.
#[test]
fn zero_survivor_round_completes_without_panicking() {
    // One-round outage covering the entire fleet in round 1.
    let plan = FaultPlan::new(5)
        .with_outage(0, 1, 1)
        .with_outage(1, 1, 1)
        .with_outage(2, 1, 1);
    let mut log = EventLog::new();
    let result = DriverBuilder::new()
        .rounds(3)
        .faults(plan)
        .build()
        .run(&mut fedpkd(), &mut log);

    assert_eq!(result.history.len(), 3, "all rounds must complete");
    assert_eq!(result.history[1].participation_rate, 0.0);
    assert_eq!(result.history[0].participation_rate, 1.0);
    assert_eq!(result.history[2].participation_rate, 1.0);

    let round1 = result.ledger.round_traffic(1);
    assert_eq!(round1.total(), 0, "an empty round must not move any bytes");
    assert!(result.ledger.round_traffic(0).total() > 0);
    assert!(result.ledger.round_traffic(2).total() > 0);

    // Telemetry names every casualty with its cause.
    let round1_drops: Vec<_> = log
        .events()
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::ClientDropped { round: 1, .. }))
        .collect();
    assert_eq!(round1_drops.len(), 3);
    for e in round1_drops {
        if let TelemetryEvent::ClientDropped { cause, .. } = e {
            assert_eq!(cause.name(), "crash");
        }
    }
}

/// A second `run` on the same instance continues round numbering and ledger
/// accounting instead of silently restarting at round 0 — the re-run hazard
/// this SPI revision fixed.
#[test]
fn second_run_continues_rounds_and_ledger() {
    let mut algo = fedpkd();
    let first = Driver::rounds(1).run_silent(&mut algo);
    assert_eq!(first.history[0].round, 0);
    let first_bytes = first.ledger.total_bytes();

    let second = Driver::rounds(1).run_silent(&mut algo);
    assert_eq!(
        second.history[0].round, 1,
        "second run must pick up at round 1"
    );
    assert!(
        second.ledger.total_bytes() > first_bytes,
        "the returned ledger spans the instance lifetime"
    );
    assert_eq!(second.ledger.rounds_recorded(), 2);
}

/// The straggler deadline converts simulated transfer time into drops: a
/// link too slow to carry a model update within the deadline loses the
/// parameter-sharing clients from round 1 on (round 0 is latency-only
/// because no uplink has been observed yet).
#[test]
fn deadline_drops_slow_clients_after_first_upload() {
    let scenario = scenario();
    let spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    };
    let config = BaselineConfig {
        local_epochs: 1,
        ..BaselineConfig::default()
    };
    let mut algo = FedAvg::new(scenario, spec, config, 3).expect("valid federation");

    // 1 KB/s with a model update of ~100 KB: transfers take ~100 s against
    // a 1 s deadline, so every client misses it once its upload size is
    // known. Slow the third client further to show per-client factors
    // compose (it changes nothing here — all three already miss).
    let link = LinkModel::new(1_000.0, 0.01);
    let plan = FaultPlan::new(1)
        .with_deadline(link, 1.0)
        .with_slowdown(2, 4.0);
    let result = DriverBuilder::new()
        .rounds(3)
        .faults(plan)
        .build()
        .run_silent(&mut algo);

    assert_eq!(result.history[0].participation_rate, 1.0);
    assert_eq!(result.history[1].participation_rate, 0.0);
    assert_eq!(result.history[2].participation_rate, 0.0);
}
