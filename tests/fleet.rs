//! Fleet-scale runtime tests.
//!
//! Covers the two determinism contracts the event-driven scheduler makes:
//! seeded cohort sampling is a pure, replayable function of
//! `(seed, round, fleet, size)`, and streaming aggregation at the ordered
//! commit point is bit-identical to the legacy buffered round loop for
//! every algorithm, at any worker budget.

use fedpkd::prelude::*;
use proptest::prelude::*;

const FLEET: usize = 10_000;
const ROUNDS: usize = 2;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sampling is a pure function: the same `(seed, round)` always draws
    /// the same cohort, so replays and resumed runs invite the same fleet
    /// members.
    #[test]
    fn cohort_sampling_is_deterministic(
        seed in any::<u64>(),
        round in 0usize..1000,
        size in 1usize..512,
    ) {
        prop_assert_eq!(
            sample_cohort(seed, round, FLEET, size),
            sample_cohort(seed, round, FLEET, size)
        );
    }

    /// Sampled cohorts are sorted, duplicate-free, in range, and exactly
    /// the requested size (capped at the fleet).
    #[test]
    fn cohorts_are_duplicate_free_and_in_range(
        seed in any::<u64>(),
        round in 0usize..1000,
        size in 1usize..2048,
    ) {
        let cohort = sample_cohort(seed, round, FLEET, size);
        prop_assert_eq!(cohort.len(), size.min(FLEET));
        for pair in cohort.windows(2) {
            prop_assert!(pair[0] < pair[1], "sorted, duplicate-free");
        }
        if let Some(&last) = cohort.last() {
            prop_assert!(last < FLEET);
        }
    }

    /// Consecutive rounds and perturbed seeds draw different cohorts (with
    /// 64 picks from 10 000 a collision is astronomically unlikely), so
    /// the fleet actually rotates instead of re-inviting one clique.
    #[test]
    fn cohorts_vary_by_round_and_seed(seed in any::<u64>(), round in 0usize..1000) {
        let base = sample_cohort(seed, round, FLEET, 64);
        prop_assert_ne!(&base, &sample_cohort(seed, round + 1, FLEET, 64));
        prop_assert_ne!(&base, &sample_cohort(seed ^ 1, round, FLEET, 64));
    }

    /// A 10k-fleet run under a sampled cohort policy is bit-identical on
    /// replay — same `RunResult`, same server state — regardless of the
    /// worker budget, because uploads fold at the canonical commit point.
    #[test]
    fn fleet_run_replays_identically(seed in any::<u64>(), cohort_seed in any::<u64>()) {
        let run = |workers: usize| {
            let mut fleet = FleetSim::new(FLEET, 6, 8, seed);
            let result = DriverBuilder::new()
                .rounds(ROUNDS)
                .cohort(CohortPolicy::Sample { size: 64, seed: cohort_seed })
                .workers(workers)
                .build()
                .run_silent(&mut fleet);
            (result, fleet)
        };
        prop_assert_eq!(run(1), run(4));
    }
}

/// A fleet run interrupted by a snapshot resumes onto the same cohorts and
/// the same state as the uninterrupted run.
#[test]
fn fleet_resume_draws_identical_cohorts() {
    let builder = |rounds: usize| {
        DriverBuilder::new()
            .rounds(rounds)
            .cohort(CohortPolicy::Sample { size: 64, seed: 77 })
    };
    let mut straight = FleetSim::new(FLEET, 6, 8, 5);
    let mut full_log = EventLog::new();
    let full = builder(4).build().run(&mut straight, &mut full_log);

    let mut halted = FleetSim::new(FLEET, 6, 8, 5);
    let _ = builder(2).build().run_silent(&mut halted);
    let state = Driver::snapshot(&halted, &mut NullObserver);
    let mut resumed = FleetSim::new(FLEET, 6, 8, 5);
    let tail = builder(2)
        .build()
        .resume(&mut resumed, &state, &mut NullObserver)
        .expect("snapshot restores");

    assert_eq!(resumed, straight, "resumed server state matches");
    assert_eq!(tail.history, full.history[2..], "resumed metrics match");
}

// --- streaming ≡ buffered, across every algorithm ------------------------

fn scenario(seed: u64) -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(3)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(240)
        .public_size(90)
        .global_test_size(90)
        .seed(seed)
        .build()
        .expect("valid scenario")
}

fn client_spec() -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T11,
    }
}

fn server_spec() -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    }
}

fn fast_baseline() -> BaselineConfig {
    BaselineConfig {
        local_epochs: 1,
        server_epochs: 1,
        digest_epochs: 1,
        ..BaselineConfig::default()
    }
}

fn fast_pkd() -> FedPkdConfig {
    FedPkdConfig {
        client_private_epochs: 1,
        client_public_epochs: 1,
        server_epochs: 1,
        ..FedPkdConfig::default()
    }
}

/// The redesigned driver (streaming aggregation, work-stealing pool) must
/// reproduce the legacy buffered entry point bit-for-bit: once via the
/// deprecated shim, once at the default worker budget, once fully serial.
fn assert_streaming_matches_legacy<A: Federation>(name: &str, make: &dyn Fn() -> A) {
    let mut legacy_algo = make();
    #[allow(deprecated)]
    let legacy = legacy_algo.run_silent(ROUNDS);
    let driven = Driver::rounds(ROUNDS).run_silent(&mut make());
    let serial = DriverBuilder::new()
        .rounds(ROUNDS)
        .workers(1)
        .build()
        .run_silent(&mut make());
    assert_eq!(legacy, driven, "{name}: legacy shim vs driver");
    assert_eq!(driven, serial, "{name}: default workers vs serial");
}

#[test]
fn streaming_matches_legacy_for_fedpkd() {
    assert_streaming_matches_legacy("FedPKD", &|| {
        FedPkd::new(
            scenario(21),
            vec![client_spec(); 3],
            server_spec(),
            fast_pkd(),
            9,
        )
        .unwrap()
    });
}

#[test]
fn streaming_matches_legacy_for_fedavg() {
    assert_streaming_matches_legacy("FedAvg", &|| {
        FedAvg::new(scenario(22), server_spec(), fast_baseline(), 9).unwrap()
    });
}

#[test]
fn streaming_matches_legacy_for_fedprox() {
    assert_streaming_matches_legacy("FedProx", &|| {
        FedProx::new(scenario(23), server_spec(), fast_baseline(), 9).unwrap()
    });
}

#[test]
fn streaming_matches_legacy_for_fedmd() {
    assert_streaming_matches_legacy("FedMD", &|| {
        FedMd::new(scenario(24), vec![client_spec(); 3], fast_baseline(), 9).unwrap()
    });
}

#[test]
fn streaming_matches_legacy_for_dsfl() {
    assert_streaming_matches_legacy("DS-FL", &|| {
        DsFl::new(scenario(25), vec![client_spec(); 3], fast_baseline(), 9).unwrap()
    });
}

#[test]
fn streaming_matches_legacy_for_feddf() {
    assert_streaming_matches_legacy("FedDF", &|| {
        FedDf::new(scenario(26), server_spec(), fast_baseline(), 9).unwrap()
    });
}

#[test]
fn streaming_matches_legacy_for_fedet() {
    assert_streaming_matches_legacy("FedET", &|| {
        FedEt::new(
            scenario(27),
            vec![client_spec(); 3],
            server_spec(),
            fast_baseline(),
            9,
        )
        .unwrap()
    });
}

#[test]
fn streaming_matches_legacy_for_naive_kd() {
    assert_streaming_matches_legacy("NaiveKD", &|| {
        NaiveKd::new(
            scenario(28),
            vec![client_spec(); 3],
            server_spec(),
            fast_baseline(),
            9,
        )
        .unwrap()
    });
}

/// FedPKD takes the buffered aggregation path when diagnostics are on (the
/// observer needs the full logit set) and the streaming path when silent;
/// the two must produce identical round metrics and traffic.
#[test]
fn observed_buffered_run_matches_silent_streaming_run() {
    let make = || {
        FedPkd::new(
            scenario(29),
            vec![client_spec(); 3],
            server_spec(),
            fast_pkd(),
            13,
        )
        .unwrap()
    };
    let silent = Driver::rounds(ROUNDS).run_silent(&mut make());
    let mut log = EventLog::new();
    let observed = Driver::rounds(ROUNDS).run(&mut make(), &mut log);
    assert_eq!(silent, observed, "streaming and buffered paths agree");
    assert!(!log.events().is_empty());
}
