//! Integration tests for the round-telemetry layer: observers must never
//! change results, and the serialized trace must carry the paper-level
//! quantities (phase timings, Algorithm 1 filter outcomes, Eq. 13 loss
//! components) a reader expects.

use fedpkd::prelude::*;

const SEED: u64 = 4242;
const ROUNDS: usize = 2;

fn scenario() -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(3)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(360)
        .public_size(120)
        .global_test_size(150)
        .seed(7)
        .build()
        .expect("valid scenario")
}

fn fedpkd() -> FedPkd {
    let client_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T11,
    };
    let server_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    };
    let config = FedPkdConfig {
        client_private_epochs: 2,
        client_public_epochs: 1,
        server_epochs: 3,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    };
    FedPkd::new(scenario(), vec![client_spec; 3], server_spec, config, SEED)
        .expect("valid federation")
}

/// The core telemetry contract: observers are purely observational. A run's
/// `RunResult` (history and ledger) must be bit-identical whether telemetry
/// is disabled, streamed to JSONL, or collected in memory.
#[test]
fn observers_do_not_change_results() {
    let silent = Driver::rounds(ROUNDS).run_silent(&mut fedpkd());

    let mut sink = JsonlSink::new(Vec::new());
    let streamed = Driver::rounds(ROUNDS).run(&mut fedpkd(), &mut sink);
    assert!(sink.error().is_none());
    assert_eq!(silent, streamed, "JsonlSink must not perturb the run");

    let mut log = EventLog::new();
    let logged = Driver::rounds(ROUNDS).run(&mut fedpkd(), &mut log);
    assert_eq!(silent, logged, "EventLog must not perturb the run");
    assert!(!log.events().is_empty());
}

/// Golden-shape test for the JSONL trace of a two-round FedPKD run: every
/// line is one JSON object, and the stream carries the events and fields
/// the paper's diagnostics need. Field *presence* is asserted, never float
/// values — the trace shape is the contract, the numbers are not.
#[test]
fn fedpkd_jsonl_trace_has_expected_shape() {
    let mut sink = JsonlSink::new(Vec::new());
    Driver::rounds(ROUNDS).run(&mut fedpkd(), &mut sink);
    let bytes = sink.into_inner().expect("in-memory writer cannot fail");
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }

    let count = |pred: &dyn Fn(&str) -> bool| lines.iter().filter(|l| pred(l)).count();
    let has_event = |l: &str, kind: &str| l.contains(&format!("\"event\":\"{kind}\""));

    // Round framing: one start and one end per round, carrying identity.
    assert_eq!(count(&|l| has_event(l, "round_start")), ROUNDS);
    assert_eq!(count(&|l| has_event(l, "round_end")), ROUNDS);
    assert!(lines[0].contains("\"algorithm\":\"FedPKD\""));
    assert!(lines[0].contains("\"clients\":3"));
    for round in 0..ROUNDS {
        let frame = format!("\"round\":{round}");
        assert!(
            count(&|l| has_event(l, "round_start") && l.contains(&frame)) == 1,
            "round {round} must start exactly once"
        );
    }

    // Phase timings: every FedPKD phase appears each round.
    for phase in [
        "client_training",
        "aggregation",
        "filter",
        "server_distill",
        "client_distill",
        "evaluation",
    ] {
        let tag = format!("\"phase\":\"{phase}\"");
        assert_eq!(
            count(&|l| has_event(l, "phase_timing") && l.contains(&tag)),
            ROUNDS,
            "phase {phase} must be timed every round"
        );
        let timed = lines
            .iter()
            .find(|l| has_event(l, "phase_timing") && l.contains(&tag))
            .unwrap();
        assert!(timed.contains("\"seconds\":"), "{timed}");
    }

    // Algorithm 1 filter outcomes: kept/dropped counts and the Eq. 10
    // distance summary, once per round.
    assert_eq!(count(&|l| has_event(l, "filter_outcome")), ROUNDS);
    let filter = lines
        .iter()
        .find(|l| has_event(l, "filter_outcome"))
        .unwrap();
    for field in [
        "\"kept\":",
        "\"dropped\":",
        "\"kept_per_class\":[",
        "\"total_per_class\":[",
        "\"distance_quantiles\":[",
    ] {
        assert!(
            filter.contains(field),
            "filter_outcome missing {field}: {filter}"
        );
    }

    // Eq. 13 server loss components, once per round.
    assert_eq!(count(&|l| has_event(l, "server_distill")), ROUNDS);
    let distill = lines
        .iter()
        .find(|l| has_event(l, "server_distill"))
        .unwrap();
    for field in [
        "\"kd_loss\":",
        "\"proto_loss\":",
        "\"combined_loss\":",
        "\"batches\":",
    ] {
        assert!(
            distill.contains(field),
            "server_distill missing {field}: {distill}"
        );
    }

    // Aggregation confidence (Eqs. 6–7), prototype drift, per-client
    // training, and ledger accounting are all present.
    assert_eq!(count(&|l| has_event(l, "logit_aggregation")), ROUNDS);
    assert!(lines
        .iter()
        .any(|l| has_event(l, "logit_aggregation") && l.contains("\"variance_weighting\":true")));
    assert_eq!(count(&|l| has_event(l, "prototype_drift")), ROUNDS);
    assert_eq!(count(&|l| has_event(l, "client_trained")), 3 * ROUNDS);
    assert_eq!(count(&|l| has_event(l, "client_distilled")), 3 * ROUNDS);
    assert_eq!(count(&|l| has_event(l, "ledger_delta")), ROUNDS);
    let end = lines.last().unwrap();
    assert!(has_event(end, "round_end"));
    for field in [
        "\"server_accuracy\":",
        "\"mean_client_accuracy\":",
        "\"cumulative_bytes\":",
    ] {
        assert!(end.contains(field), "round_end missing {field}: {end}");
    }
}

/// Golden-shape test for the transport events emitted by the serving layer
/// (`fedpkd-serve`). Every field is an integer or a fixed string, so the
/// serialized lines are exact — this pins the JSONL contract an operator's
/// log tooling parses.
#[test]
fn transport_events_jsonl_golden_shape() {
    let events = [
        TelemetryEvent::ConnAccepted {
            round: 3,
            conn: 11,
            transport: "uds".to_string(),
        },
        TelemetryEvent::ConnClosed {
            round: 3,
            conn: 11,
            frames: 5,
            bytes: 2048,
        },
        TelemetryEvent::FrameRejected {
            round: 3,
            conn: 11,
            cause: FrameRejectCause::ChecksumMismatch,
        },
        TelemetryEvent::RetryScheduled {
            round: 3,
            client: 7,
            attempt: 2,
            delay_ms: 400,
        },
        TelemetryEvent::ServerOverloaded {
            round: 3,
            inflight: 16,
            limit: 16,
        },
    ];
    let golden = [
        r#"{"event":"conn_accepted","round":3,"conn":11,"transport":"uds"}"#,
        r#"{"event":"conn_closed","round":3,"conn":11,"frames":5,"bytes":2048}"#,
        r#"{"event":"frame_rejected","round":3,"conn":11,"cause":"checksum_mismatch"}"#,
        r#"{"event":"retry_scheduled","round":3,"client":7,"attempt":2,"delay_ms":400}"#,
        r#"{"event":"server_overloaded","round":3,"inflight":16,"limit":16}"#,
    ];

    let mut sink = JsonlSink::new(Vec::new());
    for event in &events {
        sink.record(event);
    }
    let bytes = sink.into_inner().expect("in-memory writer cannot fail");
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines, golden);

    for (event, line) in events.iter().zip(&golden) {
        assert!(line.contains(&format!("\"event\":\"{}\"", event.kind())));
        assert_eq!(event.round(), 3);
    }
}

/// The event stream is framed per round: `round_start` opens, `round_end`
/// closes, and everything in between belongs to that round.
#[test]
fn event_stream_is_round_framed() {
    let mut log = EventLog::new();
    Driver::rounds(ROUNDS).run(&mut fedpkd(), &mut log);

    let mut open: Option<usize> = None;
    let mut rounds_seen = 0;
    for event in log.events() {
        match event {
            TelemetryEvent::RoundStart { round, .. } => {
                assert_eq!(open, None, "round {round} started inside another round");
                assert_eq!(*round, rounds_seen, "rounds must start in order");
                open = Some(*round);
            }
            TelemetryEvent::RoundEnd { round, .. } => {
                assert_eq!(open, Some(*round), "round {round} ended without starting");
                open = None;
                rounds_seen += 1;
            }
            other => {
                assert_eq!(
                    Some(other.round()),
                    open,
                    "event {} outside its round frame",
                    other.kind()
                );
            }
        }
    }
    assert_eq!(open, None, "last round must be closed");
    assert_eq!(rounds_seen, ROUNDS);
}
