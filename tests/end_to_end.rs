//! End-to-end integration tests: every algorithm runs on the same scenario
//! through the public umbrella API.

use fedpkd::prelude::*;

const SEED: u64 = 1234;

fn scenario(seed: u64) -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(3)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(360)
        .public_size(120)
        .global_test_size(150)
        .seed(seed)
        .build()
        .expect("valid scenario")
}

fn client_spec() -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T11,
    }
}

fn server_spec() -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    }
}

fn fast_baseline() -> BaselineConfig {
    BaselineConfig {
        local_epochs: 2,
        server_epochs: 2,
        digest_epochs: 1,
        learning_rate: 0.003,
        ..BaselineConfig::default()
    }
}

fn fast_pkd() -> FedPkdConfig {
    FedPkdConfig {
        client_private_epochs: 2,
        client_public_epochs: 1,
        server_epochs: 3,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    }
}

/// Runs two rounds and asserts the invariants every federation must hold.
fn smoke<F: Federation>(mut algo: F, expect_server_model: bool) -> RunResult {
    let result = Driver::rounds(2).run_silent(&mut algo);
    assert_eq!(result.history.len(), 2);
    for metrics in &result.history {
        assert_eq!(metrics.client_accuracies.len(), 3);
        for &acc in &metrics.client_accuracies {
            assert!((0.0..=1.0).contains(&acc), "client accuracy {acc}");
        }
        match (expect_server_model, metrics.server_accuracy) {
            (true, Some(acc)) => assert!((0.0..=1.0).contains(&acc)),
            (false, None) => {}
            (expected, got) => panic!("server model expected={expected}, got {got:?}"),
        }
    }
    assert!(!result.ledger.is_empty(), "rounds must generate traffic");
    assert!(result.ledger.rounds_recorded() == 2);
    result
}

#[test]
fn fedpkd_end_to_end() {
    let algo = FedPkd::new(
        scenario(1),
        vec![client_spec(); 3],
        server_spec(),
        fast_pkd(),
        SEED,
    )
    .unwrap();
    let result = smoke(algo, true);
    assert!(result.best_server_accuracy().unwrap() > 0.15);
}

#[test]
fn fedavg_end_to_end() {
    let algo = FedAvg::new(scenario(2), server_spec(), fast_baseline(), SEED).unwrap();
    smoke(algo, true);
}

#[test]
fn fedprox_end_to_end() {
    let algo = FedProx::new(scenario(3), server_spec(), fast_baseline(), SEED).unwrap();
    smoke(algo, true);
}

#[test]
fn fedmd_end_to_end() {
    let algo = FedMd::new(scenario(4), vec![client_spec(); 3], fast_baseline(), SEED).unwrap();
    smoke(algo, false);
}

#[test]
fn dsfl_end_to_end() {
    let algo = DsFl::new(scenario(5), vec![client_spec(); 3], fast_baseline(), SEED).unwrap();
    smoke(algo, false);
}

#[test]
fn feddf_end_to_end() {
    let algo = FedDf::new(scenario(6), server_spec(), fast_baseline(), SEED).unwrap();
    smoke(algo, true);
}

#[test]
fn fedet_end_to_end() {
    let algo = FedEt::new(
        scenario(7),
        vec![client_spec(); 3],
        server_spec(),
        fast_baseline(),
        SEED,
    )
    .unwrap();
    smoke(algo, true);
}

#[test]
fn naive_kd_end_to_end() {
    let algo = NaiveKd::new(
        scenario(8),
        vec![client_spec(); 3],
        server_spec(),
        fast_baseline(),
        SEED,
    )
    .unwrap();
    smoke(algo, true);
}

#[test]
fn whole_stack_is_deterministic() {
    let run = |seed: u64| {
        let mut algo = FedPkd::new(
            scenario(9),
            vec![client_spec(); 3],
            server_spec(),
            fast_pkd(),
            seed,
        )
        .unwrap();
        let result = Driver::rounds(2).run_silent(&mut algo);
        (
            result.last().server_accuracy,
            result.last().client_accuracies.clone(),
            result.ledger.total_bytes(),
        )
    };
    assert_eq!(run(77), run(77), "same seed, same everything");
    assert_ne!(run(77), run(78), "different seed, different trajectory");
}

#[test]
fn all_methods_beat_chance_on_a_mild_partition() {
    // A slightly bigger budget: each method must clear 2× chance accuracy
    // on its primary metric.
    let rounds = 3;
    let chance = 0.1;

    let mut pkd = FedPkd::new(
        scenario(10),
        vec![client_spec(); 3],
        server_spec(),
        fast_pkd(),
        SEED,
    )
    .unwrap();
    let r = Driver::rounds(rounds).run_silent(&mut pkd);
    assert!(r.best_server_accuracy().unwrap() > 2.0 * chance, "FedPKD");

    let mut avg = FedAvg::new(scenario(10), server_spec(), fast_baseline(), SEED).unwrap();
    let r = Driver::rounds(rounds).run_silent(&mut avg);
    assert!(r.best_server_accuracy().unwrap() > 2.0 * chance, "FedAvg");

    let mut md = FedMd::new(scenario(10), vec![client_spec(); 3], fast_baseline(), SEED).unwrap();
    let r = Driver::rounds(rounds).run_silent(&mut md);
    assert!(r.best_client_accuracy() > 2.0 * chance, "FedMD");
}
