//! Integration tests for the Byzantine-robustness subsystem: garbage
//! payloads that must not crash the server, deterministic replay of
//! adversarial runs, quarantine of repeat offenders, and the accuracy
//! contract — trimmed aggregation beats the paper-faithful path under a
//! label-flip minority while staying within noise of it on clean runs.

use fedpkd::prelude::*;

const SEED: u64 = 4242;
const CLIENTS: usize = 5;

// A mild partition (alpha = 10 is near-IID): trimmed aggregation's
// guarantees presume an *agreeing* honest majority. Under extreme skew each
// sample has only one or two confident specialists and per-coordinate
// trimming deletes exactly their votes — the accuracy/robustness tradeoff
// documented in DESIGN.md §5d.
fn scenario() -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(CLIENTS)
        .partition(Partition::Dirichlet { alpha: 10.0 })
        .samples(600)
        .public_size(120)
        .global_test_size(150)
        .seed(11)
        .build()
        .expect("valid scenario")
}

fn config() -> FedPkdConfig {
    FedPkdConfig {
        client_private_epochs: 2,
        client_public_epochs: 1,
        server_epochs: 3,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    }
}

fn fedpkd(config: FedPkdConfig) -> FedPkd {
    let client_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T11,
    };
    let server_spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    };
    FedPkd::new(
        scenario(),
        vec![client_spec; CLIENTS],
        server_spec,
        config,
        SEED,
    )
    .expect("valid federation")
}

/// A NaN-spewing client and a wrong-shape client cannot crash the server:
/// the run completes every round, both are rejected with the right typed
/// reason, and after `quarantine_after` consecutive rejections they are
/// quarantined and never re-inspected.
#[test]
fn garbage_payloads_are_rejected_not_fatal() {
    let plan = FaultPlan::new(7)
        .with_adversary(0, Attack::NonFinitePayload)
        .with_adversary(1, Attack::WrongShapePayload);
    let mut log = EventLog::new();
    let result = DriverBuilder::new()
        .rounds(4)
        .faults(plan)
        .build()
        .run(&mut fedpkd(config()), &mut log);
    assert_eq!(result.history.len(), 4, "all rounds must complete");

    let rejections: Vec<(usize, usize, RejectReason)> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::PayloadRejected {
                round,
                client,
                reason,
                ..
            } => Some((*round, *client, *reason)),
            _ => None,
        })
        .collect();
    assert!(
        rejections
            .iter()
            .any(|&(r, c, why)| r == 0 && c == 0 && why == RejectReason::NonFinite),
        "round 0 must reject client 0's NaN payload: {rejections:?}"
    );
    assert!(
        rejections
            .iter()
            .any(|&(r, c, why)| r == 0 && c == 1 && why == RejectReason::WrongShape),
        "round 0 must reject client 1's wrong-shape payload: {rejections:?}"
    );
    // No honest client is ever rejected.
    assert!(
        rejections.iter().all(|&(_, c, _)| c < 2),
        "honest clients must pass admission: {rejections:?}"
    );

    // Default quarantine_after = 3: both offenders tip over in round 2...
    let quarantined: Vec<(usize, usize)> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::ClientQuarantined { round, client, .. } => Some((*round, *client)),
            _ => None,
        })
        .collect();
    assert_eq!(
        quarantined,
        vec![(2, 0), (2, 1)],
        "both persistent offenders quarantine after 3 strikes"
    );
    // ...and from round 3 on their payloads are turned away unopened.
    assert!(
        rejections
            .iter()
            .any(|&(r, c, why)| r == 3 && c == 0 && why == RejectReason::Quarantined),
        "a quarantined client is rejected without inspection: {rejections:?}"
    );
}

/// Even with admission disabled, garbage flowing into Eqs. 6–10 must
/// degrade accuracy, not crash the server: the aggregation primitives
/// return typed errors and the Eq. 10 filter sorts NaN distances with a
/// total order instead of asserting on them.
#[test]
fn disabled_admission_degrades_gracefully_under_nan() {
    let plan = FaultPlan::new(17).with_adversary(0, Attack::NonFinitePayload);
    let cfg = FedPkdConfig {
        admission: AdmissionPolicy {
            enabled: false,
            ..AdmissionPolicy::default()
        },
        ..config()
    };
    let result = DriverBuilder::new()
        .rounds(2)
        .faults(plan)
        .build()
        .run_silent(&mut fedpkd(cfg));
    assert_eq!(result.history.len(), 2, "all rounds must complete");
}

/// The lossy 8-bit channel must coexist with adversaries: a NaN-spewing
/// client cannot be quantized (affine u8 calibration has no encoding for
/// non-finite values), so its payload travels raw and gets rejected by
/// admission — the quantizer returns a typed error instead of panicking,
/// and the run completes. Exercises both the unquantizable-uplink guard
/// and the downlink fallback in the same configuration.
#[test]
fn quantized_channel_survives_nan_adversary() {
    let plan = FaultPlan::new(23).with_adversary(0, Attack::NonFinitePayload);
    let cfg = FedPkdConfig {
        quantize_knowledge: true,
        ..config()
    };
    let result = DriverBuilder::new()
        .rounds(3)
        .faults(plan)
        .build()
        .run_silent(&mut fedpkd(cfg));
    assert_eq!(result.history.len(), 3, "all rounds must complete");
}

/// The reproducibility contract extends to adversarial runs: the same seed
/// and the same attack roster replay bit-identically.
#[test]
fn byzantine_runs_replay_bit_identically() {
    let plan = FaultPlan::new(3)
        .with_adversary(1, Attack::PrototypeNoise(2.0))
        .with_adversary(4, Attack::LogitScale(-8.0))
        .with_dropout(0.2);
    let mut driver = DriverBuilder::new().rounds(3).faults(plan).build();
    let a = driver.run_silent(&mut fedpkd(config()));
    let b = driver.run_silent(&mut fedpkd(config()));
    assert_eq!(a, b, "adversarial runs must replay exactly");
}

/// The headline robustness claim: with 20% of the fleet flipping labels
/// (1 of 5 clients), trimmed aggregation ends the run strictly better than
/// the paper-faithful variance-weighted path at the identical seed. The
/// flip attack is calibrated to beat Eq. 7 — a negated logit row is still
/// perfectly "confident", so variance weighting amplifies rather than
/// discounts it.
#[test]
fn trimming_beats_variance_weighting_under_label_flip() {
    let plan = FaultPlan::new(13).with_adversary(2, Attack::LogitLabelFlip);

    let mut driver = DriverBuilder::new().rounds(3).faults(plan).build();
    let undefended = driver.run_silent(&mut fedpkd(config()));
    let defended_cfg = FedPkdConfig {
        robust: RobustAggregation::Trimmed {
            trim_fraction: 0.25,
        },
        ..config()
    };
    let defended = driver.run_silent(&mut fedpkd(defended_cfg));

    let undefended_acc = undefended.best_server_accuracy().unwrap();
    let defended_acc = defended.best_server_accuracy().unwrap();
    assert!(
        defended_acc > undefended_acc,
        "trimmed aggregation must beat the undefended path under a 20% \
         label-flip minority: defended {defended_acc} vs undefended {undefended_acc}"
    );
}

/// Admission control is a true no-op on clean runs: disabling it does not
/// change a single bit of the trajectory, because every honest payload
/// passes every check.
#[test]
fn admission_is_bit_transparent_on_clean_runs() {
    let enabled = Driver::rounds(2).run_silent(&mut fedpkd(config()));
    let disabled_cfg = FedPkdConfig {
        admission: AdmissionPolicy {
            enabled: false,
            ..AdmissionPolicy::default()
        },
        ..config()
    };
    let disabled = Driver::rounds(2).run_silent(&mut fedpkd(disabled_cfg));
    assert_eq!(enabled, disabled, "admission must not perturb clean runs");
}

/// Trimmed aggregation on a clean run stays within noise of the
/// paper-faithful path: dropping the extreme probability per coordinate
/// barely moves an all-honest ensemble.
#[test]
fn defended_clean_run_matches_paper_faithful_within_noise() {
    let faithful = Driver::rounds(3).run_silent(&mut fedpkd(config()));
    let defended_cfg = FedPkdConfig {
        robust: RobustAggregation::Trimmed {
            trim_fraction: 0.25,
        },
        ..config()
    };
    let defended = Driver::rounds(3).run_silent(&mut fedpkd(defended_cfg));

    let faithful_acc = faithful.best_server_accuracy().unwrap();
    let defended_acc = defended.best_server_accuracy().unwrap();
    // The tolerance is wide because three rounds on a toy scenario are
    // noisy; the contract is "no collapse", not bit-equality (trimming
    // changes the teacher, and at this scale can even come out ahead).
    assert!(
        (faithful_acc - defended_acc).abs() < 0.15,
        "clean-run defenses must be within noise of the paper-faithful \
         path: faithful {faithful_acc} vs defended {defended_acc}"
    );
    assert!(
        defended_acc > 0.3,
        "defended clean accuracy must stay well above chance: {defended_acc}"
    );
}
