//! The checkpoint/resume oracle.
//!
//! For FedPKD and all seven baselines: running `2R` rounds straight must be
//! bit-identical to running `R` rounds, snapshotting *through the byte
//! codec* (encode → decode, as a checkpoint file would travel), restoring
//! into a fresh same-config instance, and running `R` more — identical
//! round history, identical lifetime ledger, and an identical telemetry
//! event stream for the resumed rounds. The oracle runs under an active
//! fault plan with dropout, an outage, and Byzantine adversaries, so the
//! snapshot also has to carry the fault-evaluation position and the
//! quarantine/caching state those features feed on.
//!
//! A second family of tests checks the failure contract: corrupt,
//! truncated, or foreign snapshot bytes surface as typed
//! [`SnapshotError`]s — never a panic, never a silent half-restore that
//! runs anyway.

use fedpkd::core::snapshot::{AlgorithmState, SnapshotError};
use fedpkd::prelude::*;

/// Rounds before the interruption; the full run drives `2 * R`.
const R: usize = 2;

fn scenario() -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(3)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(240)
        .public_size(80)
        .global_test_size(80)
        .seed(19)
        .build()
        .expect("valid scenario")
}

fn client_spec() -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T11,
    }
}

fn server_spec() -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    }
}

/// An adversarial fault plan exercising every snapshot-sensitive feature:
/// random dropout (advances the plan's round position), a scheduled outage
/// spanning the snapshot boundary, and two Byzantine clients whose attacks
/// cover both knowledge types and the parameter uplink.
fn hostile_plan() -> FaultPlan {
    FaultPlan::new(41)
        .with_dropout(0.3)
        .with_outage(1, R, 1)
        .with_adversary(0, Attack::LogitScale(-2.5))
        .with_adversary(2, Attack::PrototypeNoise(0.4))
}

/// Strips wall-clock noise and snapshot framing so two event streams can
/// be compared for semantic equality: only events from `from_round` on,
/// snapshot markers dropped, elapsed seconds zeroed.
fn normalized(events: &[TelemetryEvent], from_round: usize) -> Vec<TelemetryEvent> {
    events
        .iter()
        .filter(|e| {
            !matches!(
                e,
                TelemetryEvent::SnapshotTaken { .. } | TelemetryEvent::SnapshotRestored { .. }
            )
        })
        .filter(|e| e.round() >= from_round)
        .cloned()
        .map(|mut e| {
            match &mut e {
                TelemetryEvent::PhaseTiming { seconds, .. }
                | TelemetryEvent::RoundEnd { seconds, .. } => *seconds = 0.0,
                _ => {}
            }
            e
        })
        .collect()
}

/// A driver for `rounds` rounds under an optional fault plan.
fn driver(rounds: usize, plan: Option<&FaultPlan>) -> Driver {
    let mut builder = DriverBuilder::new().rounds(rounds);
    if let Some(plan) = plan {
        builder = builder.faults(plan.clone());
    }
    builder.build()
}

/// The oracle: straight `2R`-round run vs. `R` rounds + snapshot (through
/// the byte codec) + fresh instance + `R` resumed rounds.
fn assert_resumes_bit_identically<A: Federation>(make: impl Fn() -> A, plan: Option<&FaultPlan>) {
    let mut full_log = EventLog::new();
    let full = driver(2 * R, plan).run(&mut make(), &mut full_log);

    let mut interrupted_log = EventLog::new();
    let mut first_half = make();
    let _ = driver(R, plan).run(&mut first_half, &mut interrupted_log);
    let state = Driver::snapshot(&first_half, &mut interrupted_log);
    drop(first_half); // the "kill" — only the serialized bytes survive

    let bytes = state.to_bytes();
    let state = AlgorithmState::from_bytes(&bytes).expect("codec round-trip");

    let mut resumed_log = EventLog::new();
    let mut resumed_algo = make();
    let resumed = driver(R, plan)
        .resume(&mut resumed_algo, &state, &mut resumed_log)
        .expect("restore into a same-config instance succeeds");

    assert_eq!(
        resumed.history,
        full.history[R..].to_vec(),
        "resumed rounds must replay the uninterrupted run's metrics"
    );
    assert_eq!(
        resumed.ledger, full.ledger,
        "lifetime ledger must survive the snapshot"
    );
    assert_eq!(
        normalized(resumed_log.events(), R),
        normalized(full_log.events(), R),
        "resumed telemetry must match the uninterrupted stream"
    );
}

fn fedpkd_with(mutate: impl FnOnce(&mut FedPkdConfig)) -> FedPkd {
    let mut config = FedPkdConfig {
        client_private_epochs: 1,
        client_public_epochs: 1,
        server_epochs: 1,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    };
    mutate(&mut config);
    FedPkd::new(
        scenario(),
        vec![client_spec(); 3],
        server_spec(),
        config,
        23,
    )
    .expect("valid federation")
}

fn fedpkd() -> FedPkd {
    fedpkd_with(|_| {})
}

fn fedpkd_margins() -> FedPkd {
    fedpkd_with(|c| c.adaptive_margins = true)
}

fn fedpkd_data_free() -> FedPkd {
    fedpkd_with(|c| {
        c.adaptive_margins = true;
        c.distill_source = DistillSource::Generated;
    })
}

fn baseline_config() -> BaselineConfig {
    BaselineConfig {
        local_epochs: 1,
        digest_epochs: 1,
        server_epochs: 1,
        learning_rate: 0.003,
        ..BaselineConfig::default()
    }
}

#[test]
fn fedpkd_resumes_bit_identically() {
    assert_resumes_bit_identically(fedpkd, None);
}

#[test]
fn fedpkd_resumes_bit_identically_under_hostile_faults() {
    assert_resumes_bit_identically(fedpkd, Some(&hostile_plan()));
}

#[test]
fn fedpkd_margins_resume_bit_identically_under_hostile_faults() {
    // The trainable prototype/margin bank (PR 10) rides the snapshot: its
    // parameters, Adam moments, coverage flags, and observed-distance
    // buffer must all survive the kill for the resumed half to replay.
    assert_resumes_bit_identically(fedpkd_margins, Some(&hostile_plan()));
}

#[test]
fn fedpkd_data_free_resumes_bit_identically_under_hostile_faults() {
    // Data-free mode adds the generator (parameters + Adam + its private
    // RNG stream) to the snapshot; losing any of the three would desync
    // the synthetic transfer batches after restore.
    assert_resumes_bit_identically(fedpkd_data_free, Some(&hostile_plan()));
}

#[test]
fn fedavg_resumes_bit_identically_under_hostile_faults() {
    assert_resumes_bit_identically(
        || FedAvg::new(scenario(), client_spec(), baseline_config(), 29).unwrap(),
        Some(&hostile_plan()),
    );
}

#[test]
fn fedprox_resumes_bit_identically_under_hostile_faults() {
    assert_resumes_bit_identically(
        || FedProx::new(scenario(), client_spec(), baseline_config(), 31).unwrap(),
        Some(&hostile_plan()),
    );
}

#[test]
fn fedmd_resumes_bit_identically_under_hostile_faults() {
    assert_resumes_bit_identically(
        || FedMd::new(scenario(), vec![client_spec(); 3], baseline_config(), 37).unwrap(),
        Some(&hostile_plan()),
    );
}

#[test]
fn dsfl_resumes_bit_identically_under_hostile_faults() {
    assert_resumes_bit_identically(
        || DsFl::new(scenario(), vec![client_spec(); 3], baseline_config(), 43).unwrap(),
        Some(&hostile_plan()),
    );
}

#[test]
fn feddf_resumes_bit_identically_under_hostile_faults() {
    assert_resumes_bit_identically(
        || FedDf::new(scenario(), client_spec(), baseline_config(), 47).unwrap(),
        Some(&hostile_plan()),
    );
}

#[test]
fn naive_kd_resumes_bit_identically_under_hostile_faults() {
    assert_resumes_bit_identically(
        || {
            NaiveKd::new(
                scenario(),
                vec![client_spec(); 3],
                server_spec(),
                baseline_config(),
                53,
            )
            .unwrap()
        },
        Some(&hostile_plan()),
    );
}

#[test]
fn fedet_resumes_bit_identically_under_hostile_faults() {
    assert_resumes_bit_identically(
        || {
            FedEt::new(
                scenario(),
                vec![client_spec(); 3],
                server_spec(),
                baseline_config(),
                59,
            )
            .unwrap()
        },
        Some(&hostile_plan()),
    );
}

// ---- Streaming envelope: snapshot_to / restore_from. -------------------

#[test]
fn streaming_snapshot_round_trips_bit_identically() {
    let mut algo = fedpkd();
    let _ = Driver::rounds(1).run_silent(&mut algo);
    // Stream to an io::Write sink — no whole-fleet Vec<u8> staging beyond
    // the sink itself (which here is the test's capture buffer).
    let mut streamed = Vec::new();
    algo.snapshot_to(&mut streamed).expect("stream out");
    let mut revived = fedpkd();
    revived
        .restore_from(&mut streamed.as_slice())
        .expect("stream back");
    // The revived instance must be bit-identical: its buffered snapshot
    // matches the donor's.
    assert_eq!(
        revived.snapshot_state().to_bytes(),
        algo.snapshot_state().to_bytes()
    );
    // And both entry points must agree on the payload they carry on.
    let full = Driver::rounds(1).run_silent(&mut algo);
    let resumed = Driver::rounds(1).run_silent(&mut revived);
    assert_eq!(resumed.history, full.history);
}

#[test]
fn v1_snapshot_bytes_restore_through_the_streaming_reader() {
    let mut algo = fedpkd();
    let _ = Driver::rounds(1).run_silent(&mut algo);
    // Bytes written by the buffered (v1) envelope — the format existing
    // checkpoint files on disk carry.
    let v1_bytes = algo.snapshot_state().to_bytes();
    let mut revived = fedpkd();
    revived
        .restore_from(&mut v1_bytes.as_slice())
        .expect("v1 bytes stay restorable");
    assert_eq!(
        revived.snapshot_state().to_bytes(),
        algo.snapshot_state().to_bytes()
    );
}

#[test]
fn streamed_snapshot_is_a_v2_envelope_and_smaller_machinery_rejects_damage() {
    let mut algo = fedpkd();
    let _ = Driver::rounds(1).run_silent(&mut algo);
    let mut bytes = Vec::new();
    algo.snapshot_to(&mut bytes).expect("stream out");
    assert_eq!(&bytes[..4], b"FPKD");
    assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 2);
    // A payload bit-flip must surface at the trailing checksum.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    assert!(fedpkd().restore_from(&mut corrupt.as_slice()).is_err());
    // Every truncation must be a typed error, never a panic.
    for len in (0..bytes.len()).step_by(257) {
        let err = fedpkd()
            .restore_from(&mut bytes[..len].as_ref())
            .unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated
                    | SnapshotError::ChecksumMismatch
                    | SnapshotError::Malformed(_)
            ),
            "prefix of {len} bytes gave {err:?}"
        );
    }
}

#[test]
fn streamed_foreign_snapshot_is_rejected_by_name() {
    let mut donor = FedAvg::new(scenario(), client_spec(), baseline_config(), 61).unwrap();
    let _ = Driver::rounds(1).run_silent(&mut donor);
    let mut bytes = Vec::new();
    donor.snapshot_to(&mut bytes).expect("stream out");
    match fedpkd().restore_from(&mut bytes.as_slice()) {
        Err(SnapshotError::AlgorithmMismatch { expected, found }) => {
            assert_eq!(expected, "FedPKD");
            assert_eq!(found, "FedAvg");
        }
        other => panic!("expected AlgorithmMismatch, got {other:?}"),
    }
}

// ---- Failure contract: corrupt bytes yield typed errors, never panics. --

#[test]
fn every_truncation_of_a_real_snapshot_is_a_typed_error() {
    let mut algo = fedpkd();
    let _ = Driver::rounds(1).run_silent(&mut algo);
    let bytes = algo.snapshot_state().to_bytes();
    // Stride through prefixes (byte-by-byte would be slow on a model-sized
    // payload); every one must fail cleanly.
    for len in (0..bytes.len()).step_by(257) {
        let err = AlgorithmState::from_bytes(&bytes[..len]).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated | SnapshotError::ChecksumMismatch
            ),
            "prefix of {len} bytes gave {err:?}"
        );
    }
}

#[test]
fn bit_flips_in_a_real_snapshot_are_detected() {
    let mut algo = fedpkd();
    let _ = Driver::rounds(1).run_silent(&mut algo);
    let bytes = algo.snapshot_state().to_bytes();
    for pos in [4, bytes.len() / 2, bytes.len() - 1] {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x40;
        match AlgorithmState::from_bytes(&corrupt) {
            // Most flips land in the payload and surface at the checksum;
            // flips inside the length fields can also surface as Truncated
            // or Malformed. All are typed; none may panic.
            Err(_) => {}
            Ok(state) => {
                // A flip confined to the payload bytes cannot decode
                // cleanly — the FNV checksum covers them all.
                panic!(
                    "corrupted snapshot decoded: {} bytes",
                    state.payload().len()
                );
            }
        }
    }
}

#[test]
fn corrupt_payload_restores_as_typed_error_not_panic() {
    let mut algo = fedpkd();
    let _ = Driver::rounds(1).run_silent(&mut algo);
    let good = algo.snapshot_state();
    // Truncate the *payload* (then re-frame it correctly), so the envelope
    // decodes fine and the per-field readers must catch the damage.
    let cut = good.payload().len() / 2;
    let clipped = AlgorithmState::new(good.algorithm(), good.payload()[..cut].to_vec());
    let mut victim = fedpkd();
    let err = victim.restore_state(&clipped).unwrap_err();
    assert!(
        matches!(err, SnapshotError::Truncated | SnapshotError::Malformed(_)),
        "got {err:?}"
    );
}

#[test]
fn foreign_snapshot_is_rejected_by_name() {
    let mut donor = FedAvg::new(scenario(), client_spec(), baseline_config(), 61).unwrap();
    let _ = Driver::rounds(1).run_silent(&mut donor);
    let state = donor.snapshot_state();
    let mut victim = fedpkd();
    match victim.restore_state(&state) {
        Err(SnapshotError::AlgorithmMismatch { expected, found }) => {
            assert_eq!(expected, "FedPKD");
            assert_eq!(found, "FedAvg");
        }
        other => panic!("expected AlgorithmMismatch, got {other:?}"),
    }
}

// ---- Version sniff (PR 10): feature-mode state is presence-tagged. -----
//
// A v2 envelope that carries margin-bank or generator state must not
// restore through a configuration that lacks the feature (and vice
// versa): the reader surfaces a typed error before consuming the
// payload, never a panic, never a silently half-applied restore.

#[test]
fn margins_snapshot_into_plain_config_is_malformed_not_a_panic() {
    let mut donor = fedpkd_margins();
    let _ = Driver::rounds(1).run_silent(&mut donor);
    let mut bytes = Vec::new();
    donor.snapshot_to(&mut bytes).expect("stream out");
    let err = fedpkd().restore_from(&mut bytes.as_slice()).unwrap_err();
    assert!(matches!(err, SnapshotError::Malformed(_)), "got {err:?}");
}

#[test]
fn plain_snapshot_into_margins_config_is_malformed_not_a_panic() {
    let mut donor = fedpkd();
    let _ = Driver::rounds(1).run_silent(&mut donor);
    let mut bytes = Vec::new();
    donor.snapshot_to(&mut bytes).expect("stream out");
    let err = fedpkd_margins()
        .restore_from(&mut bytes.as_slice())
        .unwrap_err();
    assert!(matches!(err, SnapshotError::Malformed(_)), "got {err:?}");
}

#[test]
fn generated_snapshot_into_public_config_is_malformed_not_a_panic() {
    let mut donor = fedpkd_data_free();
    let _ = Driver::rounds(1).run_silent(&mut donor);
    let mut bytes = Vec::new();
    donor.snapshot_to(&mut bytes).expect("stream out");
    // A margins-only instance accepts the bank but must balk at the
    // generator payload it has no slot for.
    let err = fedpkd_margins()
        .restore_from(&mut bytes.as_slice())
        .unwrap_err();
    assert!(matches!(err, SnapshotError::Malformed(_)), "got {err:?}");
}

#[test]
fn new_mode_snapshots_still_reject_foreign_algorithms_by_name() {
    let mut donor = FedAvg::new(scenario(), client_spec(), baseline_config(), 61).unwrap();
    let _ = Driver::rounds(1).run_silent(&mut donor);
    let mut bytes = Vec::new();
    donor.snapshot_to(&mut bytes).expect("stream out");
    for victim in [fedpkd_margins(), fedpkd_data_free()] {
        let mut victim = victim;
        match victim.restore_from(&mut bytes.as_slice()) {
            Err(SnapshotError::AlgorithmMismatch { expected, found }) => {
                assert_eq!(expected, "FedPKD");
                assert_eq!(found, "FedAvg");
            }
            other => panic!("expected AlgorithmMismatch, got {other:?}"),
        }
    }
}

#[test]
fn truncations_of_a_new_mode_snapshot_are_typed_errors() {
    let mut donor = fedpkd_data_free();
    let _ = Driver::rounds(1).run_silent(&mut donor);
    let mut bytes = Vec::new();
    donor.snapshot_to(&mut bytes).expect("stream out");
    for len in (0..bytes.len()).step_by(257) {
        let err = fedpkd_data_free()
            .restore_from(&mut bytes[..len].as_ref())
            .unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::Truncated
                    | SnapshotError::ChecksumMismatch
                    | SnapshotError::Malformed(_)
            ),
            "prefix of {len} bytes gave {err:?}"
        );
    }
}

#[test]
fn wrong_fleet_size_is_rejected_as_malformed() {
    let mut donor = fedpkd();
    let _ = Driver::rounds(1).run_silent(&mut donor);
    let state = donor.snapshot_state();
    // Same algorithm, different client count.
    let small = ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(2)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(160)
        .public_size(80)
        .global_test_size(80)
        .seed(19)
        .build()
        .unwrap();
    let config = FedPkdConfig {
        client_private_epochs: 1,
        client_public_epochs: 1,
        server_epochs: 1,
        ..FedPkdConfig::default()
    };
    let mut victim = FedPkd::new(small, vec![client_spec(); 2], server_spec(), config, 23).unwrap();
    assert!(matches!(
        victim.restore_state(&state),
        Err(SnapshotError::Malformed(_))
    ));
}
