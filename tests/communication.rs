//! Integration tests for communication accounting across algorithms.

use fedpkd::netsim::Wire;
use fedpkd::prelude::*;

fn scenario(seed: u64) -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(3)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(360)
        .public_size(100)
        .global_test_size(120)
        .seed(seed)
        .build()
        .expect("valid scenario")
}

fn spec(tier: DepthTier) -> ModelSpec {
    ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier,
    }
}

fn fast() -> BaselineConfig {
    BaselineConfig {
        local_epochs: 1,
        server_epochs: 1,
        digest_epochs: 1,
        ..BaselineConfig::default()
    }
}

#[test]
fn kd_methods_are_cheaper_per_round_than_parameter_methods() {
    // The motivating comparison of Fig. 3: with a modest public set, logit
    // traffic is far below parameter traffic.
    let mut avg = FedAvg::new(scenario(1), spec(DepthTier::T20), fast(), 5).unwrap();
    let avg_bytes = Driver::rounds(1).run_silent(&mut avg).ledger.total_bytes();

    let mut md = FedMd::new(scenario(1), vec![spec(DepthTier::T20); 3], fast(), 5).unwrap();
    let md_bytes = Driver::rounds(1).run_silent(&mut md).ledger.total_bytes();

    assert!(
        md_bytes * 5 < avg_bytes,
        "FedMD {md_bytes} should be ≫ cheaper than FedAvg {avg_bytes}"
    );
}

#[test]
fn fedpkd_round_is_cheaper_than_fedavg_round() {
    let mut pkd = FedPkd::new(
        scenario(2),
        vec![spec(DepthTier::T20); 3],
        spec(DepthTier::T56),
        FedPkdConfig {
            client_private_epochs: 1,
            client_public_epochs: 1,
            server_epochs: 1,
            ..FedPkdConfig::default()
        },
        5,
    )
    .unwrap();
    let pkd_bytes = Driver::rounds(1).run_silent(&mut pkd).ledger.total_bytes();
    let mut avg = FedAvg::new(scenario(2), spec(DepthTier::T20), fast(), 5).unwrap();
    let avg_bytes = Driver::rounds(1).run_silent(&mut avg).ledger.total_bytes();
    assert!(
        pkd_bytes < avg_bytes,
        "FedPKD {pkd_bytes} per-round bytes should undercut FedAvg {avg_bytes}"
    );
}

#[test]
fn logit_traffic_scales_with_public_size() {
    let run = |public: usize| {
        let s = ScenarioBuilder::new(SyntheticConfig::cifar10_like())
            .clients(3)
            .samples(360)
            .public_size(public)
            .global_test_size(100)
            .seed(3)
            .build()
            .unwrap();
        let mut md = FedMd::new(s, vec![spec(DepthTier::T11); 3], fast(), 5).unwrap();
        Driver::rounds(1).run_silent(&mut md).ledger.total_bytes()
    };
    let small = run(100);
    let large = run(300);
    // Tripling the public pool should roughly triple logit traffic.
    let ratio = large as f64 / small as f64;
    assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
}

#[test]
fn ledger_round_sums_match_total() {
    let mut pkd = FedPkd::new(
        scenario(4),
        vec![spec(DepthTier::T11); 3],
        spec(DepthTier::T20),
        FedPkdConfig {
            client_private_epochs: 1,
            client_public_epochs: 1,
            server_epochs: 1,
            ..FedPkdConfig::default()
        },
        7,
    )
    .unwrap();
    let result = Driver::rounds(3).run_silent(&mut pkd);
    let per_round: usize = (0..3).map(|r| result.ledger.round_traffic(r).total()).sum();
    assert_eq!(per_round, result.ledger.total_bytes());
    let per_client: usize = (0..3).map(|c| result.ledger.client_bytes(c)).sum();
    assert_eq!(per_client, result.ledger.total_bytes());
}

#[test]
fn recorded_message_sizes_match_wire_encoding() {
    // The ledger charges encoded_len(); verify encoded_len() is the real
    // serialized size for the exact payload shapes the algorithms ship.
    let logits = Message::Logits {
        sample_ids: (0..100).collect(),
        num_classes: 10,
        values: vec![0.5; 1000],
    };
    assert_eq!(logits.to_bytes().len(), logits.encoded_len());

    let update = Message::ModelUpdate {
        params: vec![0.1; 35_000],
    };
    assert_eq!(update.to_bytes().len(), update.encoded_len());

    let selection = Message::SampleSelection {
        ids: (0..70).collect(),
    };
    assert_eq!(selection.to_bytes().len(), selection.encoded_len());
}

#[test]
fn transfer_times_follow_payload_sizes() {
    let link = LinkModel::cellular();
    let small = link.transfer_time(10_000);
    let big = link.transfer_time(1_000_000);
    assert!(big > small);
    // A parameter-sized payload on cellular takes visibly longer than a
    // logit-sized one.
    assert!(big / small > 10.0);
}
