//! Cross-kernel determinism: a full federated run must produce the exact
//! same history under the scalar reference kernels and the tiled/parallel
//! fast kernels.
//!
//! This test lives in its own integration binary so nothing else runs
//! concurrently while the scoped kernel-mode override is held.

use fedpkd::prelude::*;
use fedpkd::tensor::KernelMode;

fn scenario(seed: u64) -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(3)
        .partition(Partition::Dirichlet { alpha: 0.5 })
        .samples(360)
        .public_size(120)
        .global_test_size(150)
        .seed(seed)
        .build()
        .expect("valid scenario")
}

fn run_fedpkd(seed: u64) -> RunResult {
    let client = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T11,
    };
    let server = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    };
    let config = FedPkdConfig {
        client_private_epochs: 2,
        client_public_epochs: 1,
        server_epochs: 2,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    };
    let mut algo = FedPkd::new(scenario(11), vec![client; 3], server, config, seed).unwrap();
    Driver::rounds(2).run_silent(&mut algo)
}

/// The fast kernel tier (register tiling, fused epilogues, packed transposed
/// products, row-parallel dispatch) must reproduce the scalar tier's
/// `RunResult` — history and communication ledger — exactly, on the same
/// seed. Accuracies are compared as full f64 values, so even a one-ulp
/// drift in any forward or backward pass fails this test.
#[test]
fn scalar_and_fast_kernels_produce_identical_runs() {
    let scalar_run = {
        let _scalar = KernelMode::scoped(KernelMode::Scalar);
        run_fedpkd(77)
    };
    let fast_run = {
        let _fast = KernelMode::scoped(KernelMode::Fast);
        run_fedpkd(77)
    };
    assert_eq!(
        scalar_run.history, fast_run.history,
        "kernel tiers diverged: per-round metrics differ"
    );
    assert_eq!(
        scalar_run.ledger, fast_run.ledger,
        "kernel tiers diverged: communication ledgers differ"
    );
}
