//! Integration tests for the heterogeneous-model path: mixed client
//! architectures, a larger server, and cross-tier prototype exchange.

use fedpkd::core::eval;
use fedpkd::core::fedpkd::prototypes::{aggregate_prototypes, compute_prototypes};
use fedpkd::prelude::*;
use fedpkd::tensor::models::SHARED_FEATURE_DIM;
use fedpkd::tensor::nn::Layer;

fn scenario(seed: u64) -> fedpkd::data::FederatedScenario {
    ScenarioBuilder::new(SyntheticConfig::cifar10_like())
        .clients(3)
        .partition(Partition::Shards {
            shard_size: 10,
            shards_per_client: 8,
            classes_per_client: 3,
        })
        .samples(500)
        .public_size(120)
        .global_test_size(150)
        .seed(seed)
        .build()
        .expect("valid scenario")
}

fn tiered_specs() -> Vec<ModelSpec> {
    [DepthTier::T11, DepthTier::T20, DepthTier::T29]
        .into_iter()
        .map(|tier| ModelSpec::ResMlp {
            input_dim: 32,
            num_classes: 10,
            tier,
        })
        .collect()
}

#[test]
fn all_tiers_share_the_prototype_feature_space() {
    let mut rng = Rng::seed_from_u64(1);
    for spec in tiered_specs() {
        let model = spec.build(&mut rng);
        assert_eq!(
            model.feature_dim(),
            SHARED_FEATURE_DIM,
            "{} must embed into the shared feature space",
            spec.describe()
        );
    }
}

#[test]
fn tier_capacities_are_strictly_ordered() {
    let mut rng = Rng::seed_from_u64(2);
    let counts: Vec<usize> = tiered_specs()
        .iter()
        .map(|s| s.build(&mut rng).param_count())
        .collect();
    assert!(counts[0] < counts[1] && counts[1] < counts[2], "{counts:?}");
}

#[test]
fn prototypes_from_different_tiers_aggregate() {
    let s = scenario(3);
    let mut rng = Rng::seed_from_u64(4);
    let client_protos: Vec<_> = tiered_specs()
        .iter()
        .zip(&s.clients)
        .map(|(spec, data)| {
            let mut model = spec.build(&mut rng);
            compute_prototypes(&mut model, &data.train)
        })
        .collect();
    let global = aggregate_prototypes(&client_protos).unwrap();
    assert_eq!(global.len(), 10);
    // Under shards(k=3) with 3 clients, at most 9 classes are covered.
    let covered = global.iter().filter(|p| p.is_some()).count();
    assert!(covered >= 3, "some classes must be covered, got {covered}");
    for proto in global.into_iter().flatten() {
        assert_eq!(proto.shape(), &[SHARED_FEATURE_DIM]);
        assert!(proto.all_finite());
    }
}

#[test]
fn fedpkd_trains_a_strictly_larger_server() {
    let s = scenario(5);
    let config = FedPkdConfig {
        client_private_epochs: 2,
        client_public_epochs: 1,
        server_epochs: 3,
        learning_rate: 0.003,
        ..FedPkdConfig::default()
    };
    let mut algo = FedPkd::new(
        s,
        tiered_specs(),
        ModelSpec::ResMlp {
            input_dim: 32,
            num_classes: 10,
            tier: DepthTier::T56,
        },
        config,
        9,
    )
    .unwrap();
    let result = Driver::rounds(3).run_silent(&mut algo);
    let acc = result.best_server_accuracy().unwrap();
    assert!(acc > 0.2, "heterogeneous FedPKD server accuracy {acc}");
}

#[test]
fn shards_partition_specializes_clients() {
    // Each client sees ≤ 3 classes, so an untrained-on class should have
    // near-zero accuracy for a locally trained model — the Fig. 2 effect.
    let s = scenario(6);
    let mut rng = Rng::seed_from_u64(7);
    let spec = ModelSpec::ResMlp {
        input_dim: 32,
        num_classes: 10,
        tier: DepthTier::T20,
    };
    let mut model = spec.build(&mut rng);
    let mut opt = fedpkd::tensor::optim::Adam::new(0.003);
    fedpkd::core::train::train_supervised(
        &mut model,
        &s.clients[0].train,
        5,
        32,
        &mut opt,
        &mut rng,
    );
    let per_class = eval::per_class_accuracy(&mut model, &s.global_test);
    let own_classes: std::collections::BTreeSet<usize> =
        s.clients[0].train.labels().iter().copied().collect();
    let own_mean: f64 = own_classes
        .iter()
        .map(|&c| per_class[c])
        .filter(|a| !a.is_nan())
        .sum::<f64>()
        / own_classes.len() as f64;
    let other: Vec<f64> = (0..10)
        .filter(|c| !own_classes.contains(c))
        .map(|c| per_class[c])
        .filter(|a| !a.is_nan())
        .collect();
    let other_mean: f64 = other.iter().sum::<f64>() / other.len() as f64;
    assert!(
        own_mean > other_mean + 0.3,
        "own-class accuracy {own_mean} must dominate others {other_mean}"
    );
}
