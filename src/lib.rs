//! # FedPKD — prototype-based knowledge distillation for heterogeneous FL
//!
//! A from-scratch Rust reproduction of *“A Prototype-Based Knowledge
//! Distillation Framework for Heterogeneous Federated Learning”*
//! (Lyu et al., ICDCS 2023), including every substrate the paper depends
//! on: a tensor/neural-network library, synthetic CIFAR-like federated
//! datasets, a byte-accurate network simulator, the FedPKD algorithm, and
//! the six baselines it is evaluated against.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`rng`] — deterministic random number generation and distributions
//! - [`tensor`] — tensors, layers, losses, optimizers, models
//! - [`data`] — synthetic datasets, non-IID partitioners, scenarios
//! - [`netsim`] — wire codec, messages, link model, communication ledger
//! - [`core`] — the FL round engine and the FedPKD algorithm
//! - [`baselines`] — FedAvg, FedProx, FedMD, DS-FL, FedDF, FedET, NaiveKD
//!
//! # Quickstart
//!
//! ```
//! use fedpkd::core::driver::Driver;
//! use fedpkd::core::fedpkd::{FedPkd, FedPkdConfig};
//! use fedpkd::data::{Partition, ScenarioBuilder, SyntheticConfig};
//! use fedpkd::tensor::models::{DepthTier, ModelSpec};
//!
//! // A small non-IID federation of 4 clients.
//! let scenario = ScenarioBuilder::new(SyntheticConfig::cifar10_like())
//!     .clients(4)
//!     .partition(Partition::Dirichlet { alpha: 0.3 })
//!     .samples(400)
//!     .public_size(100)
//!     .global_test_size(100)
//!     .seed(42)
//!     .build()?;
//!
//! // Heterogeneous clients, larger server.
//! let tiers = [DepthTier::T11, DepthTier::T20, DepthTier::T29, DepthTier::T20];
//! let client_specs: Vec<ModelSpec> = tiers
//!     .iter()
//!     .map(|&tier| ModelSpec::ResMlp { input_dim: 32, num_classes: 10, tier })
//!     .collect();
//! let server_spec = ModelSpec::ResMlp {
//!     input_dim: 32,
//!     num_classes: 10,
//!     tier: DepthTier::T56,
//! };
//!
//! let mut config = FedPkdConfig::default();
//! config.client_private_epochs = 1;
//! config.client_public_epochs = 1;
//! config.server_epochs = 1;
//! let mut algo = FedPkd::new(scenario, client_specs, server_spec, config, 7)?;
//! let result = Driver::rounds(2).run_silent(&mut algo);
//! println!("server accuracy: {:?}", result.last().server_accuracy);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fedpkd_baselines as baselines;
pub use fedpkd_core as core;
pub use fedpkd_data as data;
pub use fedpkd_netsim as netsim;
pub use fedpkd_rng as rng;
pub use fedpkd_tensor as tensor;

/// Commonly used items, importable with `use fedpkd::prelude::*`.
pub mod prelude {
    pub use fedpkd_baselines::{
        BaselineConfig, DsFl, FedAvg, FedDf, FedEt, FedMd, FedProx, NaiveKd,
    };
    pub use fedpkd_core::admission::{
        AdmissionPolicy, PayloadKind, QuarantineTracker, RejectReason,
    };
    pub use fedpkd_core::driver::{Driver, DriverBuilder};
    pub use fedpkd_core::fedpkd::{DistillSource, FedPkd, FedPkdConfig};
    pub use fedpkd_core::fleet::FleetSim;
    pub use fedpkd_core::robust::RobustAggregation;
    pub use fedpkd_core::runtime::{Federation, FlAlgorithm, RoundMetrics, RunResult};
    pub use fedpkd_core::snapshot::{AlgorithmState, SnapshotError};
    pub use fedpkd_core::telemetry::{
        EventLog, FrameRejectCause, JsonlSink, NullObserver, RoundObserver, TelemetryError,
        TelemetryEvent,
    };
    pub use fedpkd_data::{Partition, ScenarioBuilder, SyntheticConfig};
    pub use fedpkd_netsim::{
        bytes_to_mb, sample_cohort, Attack, Cohort, CohortPolicy, CommLedger, Direction, DropCause,
        FaultPlan, LinkModel, Message, RoundContext,
    };
    pub use fedpkd_rng::Rng;
    pub use fedpkd_tensor::models::{DepthTier, ModelSpec};
    pub use fedpkd_tensor::Tensor;
}
